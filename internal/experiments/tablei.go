package experiments

import (
	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/vector"
)

// TableI reproduces Table I: the property matrix of the fairshare vector
// representation and the three projection algorithms. Each property is
// established constructively — a small scenario demonstrates (or refutes)
// it — rather than asserted, so the table is regenerated from behaviour.
func TableI() (*Report, error) {
	r := &Report{
		ID:    "tableI",
		Title: "Overview of algorithms projecting fairshare vectors to singular numerical values",
		Columns: []string{
			"Representation", "∞ Depth", "∞ Precision", "Subgroup Isolation", "Proportional", "Combinable",
		},
	}
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "×"
	}

	deepEntries, shallowEntries, isoEntries, propEntries := tableIScenarios()

	// Vectors themselves: arbitrary depth and float precision by
	// construction, perfect isolation and proportionality, but NOT
	// combinable with scalar factors (the reason the projections exist).
	r.AddRow("Fairshare vectors", mark(true), mark(true), mark(true), mark(true), mark(false))

	for _, p := range vector.Projections() {
		depth := distinguishes(p, deepEntries)
		precision := distinguishes(p, shallowEntries)
		isolation := ranksAbove(p, isoEntries, "deep-under", "other")
		proportional := isProportional(p, propEntries)
		name := map[string]string{
			"dictionary": "Dictionary Ordering",
			"bitwise":    "Bitwise Vector",
			"percental":  "Percental",
		}[p.Name()]
		r.AddRow(name, mark(depth), mark(precision), mark(isolation), mark(proportional), mark(true))
	}
	r.AddNote("properties are demonstrated constructively; see internal/vector tests for the witness scenarios")
	r.AddNote("paper: each projection trades away at least one vector property; combinability is what the projections buy")
	return r, nil
}

// tableIScenarios builds the witness entry sets.
func tableIScenarios() (deep, shallow, iso, prop []vector.Entry) {
	// Depth witness: identical down to level 8, differing only there (in
	// both the vector and the per-level usage shares so every projection
	// sees the difference if its representation can carry it).
	mk := func(last float64, lastUsage float64) vector.Entry {
		v := make(vector.Vector, 8)
		shares := make([]float64, 8)
		usage := make([]float64, 8)
		for i := range v {
			v[i] = 5000
			shares[i] = 0.5
			usage[i] = 0.5
		}
		v[7] = last
		usage[7] = lastUsage
		return vector.Entry{Vec: v, PathShares: shares, PathUsage: usage}
	}
	hi := mk(9000, 0.1)
	hi.User = "deepHi"
	lo := mk(1000, 0.9)
	lo.User = "deepLo"
	deep = []vector.Entry{hi, lo}
	// Precision witness: differ by less than one bitwise quantum.
	shallow = []vector.Entry{
		{User: "fineHi", Vec: vector.Vector{5000.6},
			PathShares: []float64{0.5}, PathUsage: []float64{0.49994}},
		{User: "fineLo", Vec: vector.Vector{5000.1},
			PathShares: []float64{0.5}, PathUsage: []float64{0.49999}},
	}
	// Isolation witness (from the Figure-3-style tree): group G1 {a,b} is
	// under target as a group although a consumed everything inside it;
	// strict top-down enforcement ranks a above the other group's c.
	p := policy.NewTree()
	p.Add("", "g1", 0.5)
	p.Add("", "g2", 0.5)
	p.Add("/g1", "deep-under", 0.5)
	p.Add("/g1", "idle", 0.5)
	p.Add("/g2", "other", 1.0)
	ft := fairshare.Compute(p, map[string]float64{
		"deep-under": 45, "idle": 0, "other": 55,
	}, fairshare.DefaultConfig())
	iso = ft.Entries()
	// Proportionality witness: UNEVENLY spaced distances (+0.40, +0.38,
	// −0.40) — gaps 0.02 and 0.78. A proportional projection must preserve
	// that gap ratio; rank-based spacing cannot.
	prop = []vector.Entry{
		{User: "p1", Vec: vector.Vector{9000}, PathShares: []float64{0.6}, PathUsage: []float64{0.20}},
		{User: "p2", Vec: vector.Vector{8800}, PathShares: []float64{0.5}, PathUsage: []float64{0.12}},
		{User: "p3", Vec: vector.Vector{1000}, PathShares: []float64{0.1}, PathUsage: []float64{0.50}},
	}
	return deep, shallow, iso, prop
}

// distinguishes reports whether the projection assigns different values to
// the two entries.
func distinguishes(p vector.Projection, es []vector.Entry) bool {
	out := p.Project(es, 10000)
	return out[es[0].User] != out[es[1].User]
}

// ranksAbove reports whether the projection ranks user a strictly above
// user b — the cross-group comparison that subgroup isolation must win.
func ranksAbove(p vector.Projection, es []vector.Entry, a, b string) bool {
	out := p.Project(es, 10000)
	return out[a] > out[b]
}

// isProportional reports whether the projection preserves the witness'
// (target − usage) gap ratio: distances +0.40 / +0.38 / −0.40 give input
// gaps 0.02 and 0.78. A rank-based projection produces equal gaps instead.
func isProportional(p vector.Projection, es []vector.Entry) bool {
	out := p.Project(es, 10000)
	g1 := out[es[0].User] - out[es[1].User]
	g2 := out[es[1].User] - out[es[2].User]
	if g1 <= 0 || g2 <= 0 {
		return false
	}
	const inRatio = 0.02 / 0.78
	ratio := g1 / g2
	// Generous tolerance absorbs bitwise quantization while still rejecting
	// the rank-based ratio of 1.
	return ratio < 3*inRatio
}
