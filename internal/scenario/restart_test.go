package scenario

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// crashSeeds returns how many seeds the crash gauntlet covers:
// AEQUUS_CRASH_SEEDS when set (CI runs 25), a fast default otherwise.
func crashSeeds(t *testing.T) int {
	if v := os.Getenv("AEQUUS_CRASH_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad AEQUUS_CRASH_SEEDS %q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 5
	}
	return 20
}

// TestScenarioCrashGauntlet is the crash-recovery acceptance gauntlet: N
// seeds, each with 1–3 seed-deterministic kill-and-restart events injected
// mid-run. Every restart's recovery is proven bit-identical to the
// never-crashed twin inside the harness (usage records, remote mirrors,
// watermarks, published priorities), the ledger-equivalence checker keeps
// validating the recovered accounting pipeline for the rest of the run, and
// a failing seed shrinks to its smallest event prefix with a one-command
// reproduction.
func TestScenarioCrashGauntlet(t *testing.T) {
	n := crashSeeds(t)
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := GenerateCrash(seed)
			if len(spec.Restarts) < 1 || len(spec.Restarts) > 3 {
				t.Fatalf("seed %d: %d restarts outside [1,3]", seed, len(spec.Restarts))
			}
			if !spec.NoDecay || !spec.Crash {
				t.Fatalf("seed %d: crash spec not NoDecay+Crash: %+v", seed, spec)
			}
			res, err := Run(spec, Options{FailFast: true})
			if err != nil {
				t.Fatalf("seed %d: run error: %v", seed, err)
			}
			if !res.Failed() {
				return
			}
			events, small, runs, serr := Shrink(GenerateCrash(seed), Options{})
			if serr != nil {
				t.Fatalf("seed %d: shrink error: %v", seed, serr)
			}
			writeArtifact(t, spec, small, events)
			t.Errorf("seed %d: %d violation(s); shrunk to %d events in %d runs\nfirst: %s\nreproduce with:\n  %s",
				seed, len(res.Violations), events, runs, small.Violations[0], ReproCommand(spec, events))
		})
	}
}

// TestCrashRunDeterminism proves crash runs replay bit-identically — the
// property the gauntlet's shrinking and one-command repro rest on.
func TestCrashRunDeterminism(t *testing.T) {
	for _, seed := range []int64{2, 9} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			a, err := Run(GenerateCrash(seed), Options{})
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(GenerateCrash(seed), Options{})
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Fingerprint != b.Fingerprint {
				t.Errorf("crash run fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
			}
			if !reflect.DeepEqual(a.Violations, b.Violations) {
				t.Errorf("violations differ:\n%v\nvs\n%v", a.Violations, b.Violations)
			}
		})
	}
}

// TestGenerateCrashDeterministicAndBounded pins GenerateCrash's contract.
func TestGenerateCrashDeterministicAndBounded(t *testing.T) {
	organic := 0
	for seed := int64(1); seed <= 40; seed++ {
		a, b := GenerateCrash(seed), GenerateCrash(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: GenerateCrash is not deterministic", seed)
		}
		if len(a.Restarts) < 1 || len(a.Restarts) > 3 {
			t.Errorf("seed %d: %d restarts outside [1,3]", seed, len(a.Restarts))
		}
		for i, r := range a.Restarts {
			if r.Site < 0 || r.Site >= a.Sites {
				t.Errorf("seed %d: restart %d targets unknown site %d", seed, i, r.Site)
			}
			if f := float64(r.At) / float64(a.Duration); f < 0.25 || f > 0.85 {
				t.Errorf("seed %d: restart %d at %.2f of the run, outside [0.25,0.85]", seed, i, f)
			}
			if i > 0 && a.Restarts[i-1].At > r.At {
				t.Errorf("seed %d: restarts not sorted by time", seed)
			}
		}
		if g := Generate(seed); len(g.Restarts) > 0 {
			organic++
		}
	}
	// The organic draw must actually fire for some seeds (NoDecay ∧ coin),
	// or the fuzzer would never cover restarts on its own.
	if organic == 0 {
		t.Error("no organic restarts in 40 seeds — the fuzz path never exercises recovery")
	}
}

// TestCrashReproCommand pins the printed reproduction for crash scenarios.
func TestCrashReproCommand(t *testing.T) {
	spec := GenerateCrash(7)
	cmd := ReproCommand(spec, 123)
	for _, frag := range []string{"AEQUUS_SEED=7", "AEQUUS_EVENTS=123", "AEQUUS_CRASH=1", "TestScenarioReplay"} {
		if !strings.Contains(cmd, frag) {
			t.Errorf("repro command %q missing %q", cmd, frag)
		}
	}
	if cmd2 := ReproCommand(Generate(7), 0); strings.Contains(cmd2, "AEQUUS_CRASH") {
		t.Errorf("non-crash repro %q mentions AEQUUS_CRASH", cmd2)
	}
}

// TestRestartRecoveryDetectsDivergence proves the restart-recovery checker
// is live: a run whose recovered state is corrupted after recovery must
// still pass (the checker compares at the restart instant), while the
// ledger checker picks up true post-restart divergence. The cheap way to
// prove the checker can fire at all is the harness path itself — covered by
// the gauntlet — so here we only pin that a clean crash run records zero
// restart-recovery violations and that restarts actually executed (the
// digest line is the witness, via fingerprint sensitivity to Restarts).
func TestRestartRecoveryDetectsDivergence(t *testing.T) {
	seed := int64(3)
	withCrash, err := Run(GenerateCrash(seed), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range withCrash.Violations {
		if v.Invariant == "restart-recovery" {
			t.Fatalf("clean crash run recorded a restart-recovery violation: %s", v)
		}
	}
	// Same seed without the restarts: the fingerprint must differ (the
	// restart events are folded into the digest), proving the restarts ran.
	spec := GenerateCrash(seed)
	spec.Restarts = nil
	without, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withCrash.Fingerprint == without.Fingerprint {
		t.Error("crash run fingerprint identical to restart-free run — restarts did not execute")
	}
}
