package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/fairshare"
)

// Checker is one continuously evaluated invariant. Check runs at every
// check event (and once more at the end of the run) and returns the
// violations found at `now`. Checkers may keep state across calls (e.g. a
// cursor into the dispatch log) — Run creates a fresh set per scenario.
type Checker interface {
	Name() string
	Check(h *Harness, now time.Time) []Violation
}

// DefaultCheckers returns the full invariant suite with default tolerances.
func DefaultCheckers() []Checker {
	return []Checker{
		&ConservationChecker{},
		&SnapshotTwinChecker{},
		&LedgerChecker{},
		&DispatchOrderChecker{},
		&StarvationChecker{},
		&ConvergenceChecker{},
	}
}

// floatEq reports approximate equality under a combined absolute/relative
// tolerance.
func floatEq(a, b, absTol, relTol float64) bool {
	d := math.Abs(a - b)
	if d <= absTol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= relTol*m
}

// ConservationChecker verifies the structural invariants of every site's
// served fairshare tree: normalized sibling shares sum to one, usage shares
// sum to one wherever the group has usage (so Σ(share−usageShare) = 0 — the
// conservation of served priorities around the balance point), subtree
// usage equals the sum of its children, and every node's priority and value
// stay inside their documented ranges.
type ConservationChecker struct{}

// Name implements Checker.
func (*ConservationChecker) Name() string { return "conservation" }

// Check implements Checker.
func (c *ConservationChecker) Check(h *Harness, now time.Time) []Violation {
	var out []Violation
	add := func(site int, format string, args ...interface{}) {
		out = append(out, Violation{
			At:        now,
			Invariant: c.Name(),
			Detail:    fmt.Sprintf("site %d: %s", site, fmt.Sprintf(format, args...)),
		})
	}
	for i, site := range h.Sites {
		tree, err := site.FCS.Tree()
		if err != nil {
			add(i, "FCS tree unavailable: %v", err)
			continue
		}
		res := tree.Config.Resolution
		var walk func(n *fairshare.Node, path string)
		walk = func(n *fairshare.Node, path string) {
			if len(n.Children) == 0 {
				return
			}
			var sumShare, sumUsageShare, sumUsage, sumDist float64
			for _, ch := range n.Children {
				sumShare += ch.Share
				sumUsageShare += ch.UsageShare
				sumUsage += ch.Usage
				sumDist += ch.Share - ch.UsageShare
				if ch.Priority < -1-1e-9 || ch.Priority > 1+1e-9 {
					add(i, "node %s/%s priority %.9g outside [-1,1]", path, ch.Name, ch.Priority)
				}
				if ch.Value < 0 || ch.Value >= res {
					add(i, "node %s/%s value %.9g outside [0,%g)", path, ch.Name, ch.Value, res)
				}
			}
			if !floatEq(sumShare, 1, 1e-9, 1e-9) {
				add(i, "sibling shares under %s sum to %.12g, want 1", path, sumShare)
			}
			if sumUsage > 0 {
				if !floatEq(sumUsageShare, 1, 1e-9, 1e-9) {
					add(i, "usage shares under %s sum to %.12g with usage present, want 1", path, sumUsageShare)
				}
				if !floatEq(sumDist, 0, 1e-9, 1e-9) {
					add(i, "Σ(share−usageShare) under %s is %.12g, want 0", path, sumDist)
				}
			}
			if !floatEq(sumUsage, n.Usage, 1e-6, 1e-9) && path != "" {
				add(i, "subtree usage of %s is %.9g but children sum to %.9g", path, n.Usage, sumUsage)
			}
			for _, ch := range n.Children {
				walk(ch, path+"/"+ch.Name)
			}
		}
		walk(tree.Root, "")
	}
	return out
}

// SnapshotTwinChecker verifies the incremental-recalc guarantee: every
// published FCS snapshot — whether it came from a full rebuild or from the
// copy-on-write delta engine — must be bit-identical to a from-scratch
// recomputation of the same policy and usage (tree scores, index entry
// vectors, projected priorities and drift alike). Under churn and share
// edits this catches any divergence structural sharing could accumulate
// across refresh chains.
type SnapshotTwinChecker struct{}

// Name implements Checker.
func (*SnapshotTwinChecker) Name() string { return "snapshot-twin" }

// Check implements Checker.
func (c *SnapshotTwinChecker) Check(h *Harness, now time.Time) []Violation {
	var out []Violation
	for i, site := range h.Sites {
		if err := site.FCS.VerifySnapshot(); err != nil {
			out = append(out, Violation{
				At:        now,
				Invariant: c.Name(),
				Detail:    fmt.Sprintf("site %d: %v", i, err),
			})
		}
	}
	return out
}

// LedgerChecker verifies ledger equivalence: each site's USS local decayed
// totals must match an independent recomputation from the harness's flat
// completion ledger. It catches lost, duplicated or phantom usage anywhere
// in the reporting pipeline (completion call-out → identity resolution →
// USS ingestion → histogram accounting).
type LedgerChecker struct {
	// AbsTol / RelTol default to 1e-6.
	AbsTol, RelTol float64
}

// Name implements Checker.
func (*LedgerChecker) Name() string { return "ledger-equivalence" }

// Check implements Checker.
func (c *LedgerChecker) Check(h *Harness, now time.Time) []Violation {
	absTol, relTol := c.AbsTol, c.RelTol
	if absTol <= 0 {
		absTol = 1e-6
	}
	if relTol <= 0 {
		relTol = 1e-6
	}
	var out []Violation
	for i, site := range h.Sites {
		got := site.USS.LocalTotals(now, h.Decay)
		want := h.Ledger.Totals(i, h.Spec.BinWidth, now, h.Decay)
		users := map[string]bool{}
		for u := range got {
			users[u] = true
		}
		for u := range want {
			users[u] = true
		}
		names := make([]string, 0, len(users))
		for u := range users {
			names = append(names, u)
		}
		sort.Strings(names)
		for _, u := range names {
			g, w := got[u], want[u]
			if !floatEq(g, w, absTol, relTol) {
				out = append(out, Violation{
					At:        now,
					Invariant: c.Name(),
					Detail: fmt.Sprintf("site %d user %s: USS local total %.9g != ledger %.9g (Δ=%.3g)",
						i, u, g, w, g-w),
				})
			}
		}
	}
	return out
}

// DispatchOrderChecker verifies FIFO-by-priority dispatch in both RM
// substrates: within one scheduling pass, the jobs a scheduler starts come
// off its priority queue, so their dispatch priorities must be
// non-increasing, and equal-priority jobs must start in (submit time, ID)
// order — the queue's documented tie-break. It consumes the dispatch log
// incrementally across check events.
type DispatchOrderChecker struct {
	cursor int
	// last remembers the previous dispatch of each in-flight (site, pass).
	last map[[2]uint64]Dispatch
}

// Name implements Checker.
func (*DispatchOrderChecker) Name() string { return "dispatch-order" }

// Check implements Checker.
func (c *DispatchOrderChecker) Check(h *Harness, now time.Time) []Violation {
	if c.last == nil {
		c.last = map[[2]uint64]Dispatch{}
	}
	var out []Violation
	ds := h.Dispatches()
	for ; c.cursor < len(ds); c.cursor++ {
		d := ds[c.cursor]
		key := [2]uint64{uint64(d.Site), d.Pass}
		prev, seen := c.last[key]
		c.last[key] = d
		if !seen {
			continue
		}
		if d.Priority > prev.Priority {
			out = append(out, Violation{
				At:        now,
				Invariant: c.Name(),
				Detail: fmt.Sprintf("site %d pass %d: job %d (priority %.9g) started after job %d (priority %.9g)",
					d.Site, d.Pass, d.JobID, d.Priority, prev.JobID, prev.Priority),
			})
			continue
		}
		if d.Priority == prev.Priority {
			if d.Submit.Before(prev.Submit) ||
				(d.Submit.Equal(prev.Submit) && d.JobID < prev.JobID) {
				out = append(out, Violation{
					At:        now,
					Invariant: c.Name(),
					Detail: fmt.Sprintf("site %d pass %d: equal-priority job %d (submitted %s) started after job %d (submitted %s) against FIFO order",
						d.Site, d.Pass, d.JobID, d.Submit.Format(time.RFC3339), prev.JobID, prev.Submit.Format(time.RFC3339)),
				})
			}
		}
	}
	return out
}

// StarvationChecker verifies no-starvation: a pending job that fits the
// site's free cores must not sit in the queue for more than a grace period
// of scheduling passes — both substrates fill freed cores on completion and
// run full passes at the re-prioritization interval, so a fitting job older
// than that is stuck. Strict-order scheduling legitimately blocks the queue
// behind a non-fitting head, so the checker skips those scenarios.
type StarvationChecker struct {
	// GraceFactor multiplies ReprioInterval to form the allowed wait
	// (default 3).
	GraceFactor int
}

// Name implements Checker.
func (*StarvationChecker) Name() string { return "no-starvation" }

// Check implements Checker.
func (c *StarvationChecker) Check(h *Harness, now time.Time) []Violation {
	if h.Spec.StrictOrder {
		return nil
	}
	gf := c.GraceFactor
	if gf <= 0 {
		gf = 3
	}
	grace := time.Duration(gf) * h.Spec.ReprioInterval
	var out []Violation
	for i, rm := range h.RMs {
		free := h.Clusters[i].FreeCores()
		if free <= 0 {
			continue
		}
		pending := rm.Pending()
		// Deterministic report order.
		sort.Slice(pending, func(a, b int) bool { return pending[a].ID < pending[b].ID })
		for _, j := range pending {
			procs := j.Procs
			if procs < 1 {
				procs = 1
			}
			if procs <= free && now.Sub(j.Submit) > grace {
				out = append(out, Violation{
					At:        now,
					Invariant: c.Name(),
					Detail: fmt.Sprintf("site %d: job %d (%d procs) fits %d free cores but has waited %s (grace %s)",
						i, j.ID, procs, free, now.Sub(j.Submit), grace),
				})
			}
		}
	}
	return out
}

// ConvergenceChecker verifies the paper's core property on calm scenarios:
// because each user's generated demand is calibrated to its policy share,
// cumulative usage shares must approach the normalized target shares once
// the run is past the horizon. Scenarios with faults, share edits, churn or
// sabotage are exempt — their targets move mid-run.
type ConvergenceChecker struct {
	// Horizon is the fraction of the run after which the invariant is
	// enforced (default 0.6).
	Horizon float64
	// Tolerance bounds the mean absolute error between usage shares and
	// target shares (default 0.2).
	Tolerance float64
}

// Name implements Checker.
func (*ConvergenceChecker) Name() string { return "convergence" }

// Check implements Checker.
func (c *ConvergenceChecker) Check(h *Harness, now time.Time) []Violation {
	if !h.Spec.ConvergenceEligible() {
		return nil
	}
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = 0.6
	}
	tol := c.Tolerance
	if tol <= 0 {
		tol = 0.2
	}
	if now.Before(Start.Add(time.Duration(horizon * float64(h.Spec.Duration)))) {
		return nil
	}
	targets := h.TargetShares()
	usage := h.CumulativeUsage()
	var total float64
	names := make([]string, 0, len(targets))
	for u := range targets {
		names = append(names, u)
	}
	sort.Strings(names)
	for _, u := range names {
		total += usage[u]
	}
	if total <= 0 {
		return nil
	}
	var mae float64
	for _, u := range names {
		mae += math.Abs(usage[u]/total - targets[u])
	}
	mae /= float64(len(names))
	if mae > tol {
		detail := fmt.Sprintf("usage shares diverge from policy targets: MAE %.4f > %.4f (", mae, tol)
		for i, u := range names {
			if i > 0 {
				detail += ", "
			}
			detail += fmt.Sprintf("%s %.3f→%.3f", u, targets[u], usage[u]/total)
		}
		detail += ")"
		return []Violation{{At: now, Invariant: c.Name(), Detail: detail}}
	}
	return nil
}
