package scenario

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/services/fcs"
	"repro/internal/usage"
)

// TestLedgerMatchesHistogram is the property behind the ledger-equivalence
// invariant: feeding the same completions through the O(n²) flat ledger and
// through the production histogram (completion-time attribution, decayed
// totals) yields the same per-user numbers, for every decay kind.
func TestLedgerMatchesHistogram(t *testing.T) {
	decays := []struct {
		name string
		d    usage.Decay
	}{
		{"none", usage.None{}},
		{"exp", usage.ExponentialHalfLife{HalfLife: time.Hour}},
		{"linear", usage.Linear{Window: 6 * time.Hour}},
		{"step", usage.Step{Window: 3 * time.Hour}},
	}
	for _, tc := range decays {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			binWidth := 10 * time.Minute
			hist := usage.NewHistogram(binWidth)
			ledger := &Ledger{}
			users := []string{"ua", "ub", "uc"}
			for i := 0; i < 500; i++ {
				u := users[rng.Intn(len(users))]
				start := Start.Add(time.Duration(rng.Int63n(int64(8 * time.Hour))))
				dur := time.Duration(1+rng.Int63n(int64(45*time.Minute))) * 1
				procs := 1 + rng.Intn(4)
				// Production path: full usage attributed to the completion bin,
				// exactly like uss.ReportJob.
				hist.Add(u, start.Add(dur), dur.Seconds()*float64(procs))
				ledger.Add(LedgerRecord{Site: 0, User: u, Start: start, Dur: dur, Procs: procs})
			}
			now := Start.Add(9 * time.Hour)
			want := ledger.Totals(0, binWidth, now, tc.d)
			for _, u := range users {
				got := hist.DecayedTotal(u, now, tc.d)
				if !floatEq(got, want[u], 1e-6, 1e-9) {
					t.Errorf("user %s: histogram %.9g != ledger %.9g", u, got, want[u])
				}
			}
			// Records from a different site must not leak into site 0 totals.
			ledger.Add(LedgerRecord{Site: 1, User: "ua", Start: Start, Dur: time.Hour, Procs: 8})
			again := ledger.Totals(0, binWidth, now, tc.d)
			if !floatEq(again["ua"], want["ua"], 1e-12, 1e-12) {
				t.Errorf("foreign-site record leaked into site 0 totals: %.9g != %.9g", again["ua"], want["ua"])
			}
		})
	}
}

// TestDispatchOrderChecker exercises the checker on synthetic dispatch logs:
// clean priority-ordered passes stay silent, priority inversions and FIFO
// violations fire, and incremental consumption across calls works.
func TestDispatchOrderChecker(t *testing.T) {
	now := Start.Add(time.Hour)
	sub := func(m int) time.Time { return Start.Add(time.Duration(m) * time.Minute) }
	d := func(site int, pass uint64, prio float64, id int64, submit time.Time) Dispatch {
		return Dispatch{Site: site, Pass: pass, Priority: prio, JobID: id, Submit: submit}
	}

	t.Run("clean", func(t *testing.T) {
		h := &Harness{dispatches: []Dispatch{
			d(0, 1, 0.9, 1, sub(0)),
			d(0, 1, 0.5, 2, sub(1)),
			d(0, 1, 0.5, 3, sub(1)), // equal priority, equal submit, rising ID: fine
			d(1, 1, 0.2, 4, sub(2)), // other site: independent stream
			d(0, 2, 0.9, 5, sub(3)), // new pass resets the slope
		}}
		c := &DispatchOrderChecker{}
		if vs := c.Check(h, now); len(vs) != 0 {
			t.Fatalf("clean log flagged: %v", vs)
		}
	})

	t.Run("priority-inversion", func(t *testing.T) {
		h := &Harness{dispatches: []Dispatch{
			d(0, 1, 0.5, 1, sub(0)),
			d(0, 1, 0.9, 2, sub(1)), // rises within the pass
		}}
		c := &DispatchOrderChecker{}
		if vs := c.Check(h, now); len(vs) != 1 {
			t.Fatalf("want 1 violation, got %v", vs)
		}
	})

	t.Run("fifo-violation", func(t *testing.T) {
		h := &Harness{dispatches: []Dispatch{
			d(0, 1, 0.5, 2, sub(5)),
			d(0, 1, 0.5, 1, sub(0)), // same priority, earlier submit dispatched later
		}}
		c := &DispatchOrderChecker{}
		if vs := c.Check(h, now); len(vs) != 1 {
			t.Fatalf("want 1 violation, got %v", vs)
		}
	})

	t.Run("incremental", func(t *testing.T) {
		h := &Harness{dispatches: []Dispatch{d(0, 1, 0.5, 1, sub(0))}}
		c := &DispatchOrderChecker{}
		if vs := c.Check(h, now); len(vs) != 0 {
			t.Fatalf("first call flagged: %v", vs)
		}
		// The bad dispatch arrives after the first check; the cursor must
		// pick it up against the remembered predecessor.
		h.dispatches = append(h.dispatches, d(0, 1, 0.9, 2, sub(1)))
		if vs := c.Check(h, now); len(vs) != 1 {
			t.Fatalf("want 1 violation on second call, got %v", vs)
		}
		// Nothing new: silent.
		if vs := c.Check(h, now); len(vs) != 0 {
			t.Fatalf("third call flagged: %v", vs)
		}
	})
}

// TestFloatEq pins the combined absolute/relative tolerance helper.
func TestFloatEq(t *testing.T) {
	cases := []struct {
		a, b, abs, rel float64
		want           bool
	}{
		{1, 1, 0, 0, true},
		{1, 1 + 1e-12, 1e-9, 0, true},
		{1e9, 1e9 + 1, 0, 1e-6, true},
		{1e9, 1e9 + 1, 1e-9, 1e-12, false},
		{0, 1e-8, 1e-6, 0, true},
		{1, 2, 1e-9, 1e-9, false},
	}
	for i, tc := range cases {
		if got := floatEq(tc.a, tc.b, tc.abs, tc.rel); got != tc.want {
			t.Errorf("case %d: floatEq(%g,%g,%g,%g) = %v, want %v", i, tc.a, tc.b, tc.abs, tc.rel, got, tc.want)
		}
	}
}

// refreshModeRecorder samples each site's last FCS refresh mode at every
// check event — the probe that proves the incremental path actually ran
// during a scenario, not just that its snapshots were correct.
type refreshModeRecorder struct {
	modes map[string]int
}

// Name implements Checker.
func (*refreshModeRecorder) Name() string { return "refresh-mode-recorder" }

// Check implements Checker.
func (r *refreshModeRecorder) Check(h *Harness, now time.Time) []Violation {
	if r.modes == nil {
		r.modes = map[string]int{}
	}
	for _, s := range h.Sites {
		if ri := s.FCS.LastRefresh(); ri.Mode != "" {
			r.modes[ri.Mode]++
		}
	}
	return nil
}

// TestIncrementalSnapshotTwinUnderChurn drives a full multi-site scenario
// with decay off (so usage deltas stay sparse and the FCS runs its
// copy-on-write incremental engine in steady state) across a mid-run share
// edit, and requires (a) the snapshot-twin invariant to hold at every check
// event — every published snapshot bit-identical to a full recompute — and
// (b) the incremental path to have demonstrably run.
func TestIncrementalSnapshotTwinUnderChurn(t *testing.T) {
	spec := Generate(7)
	spec.NoDecay = true
	// Force a mid-run share edit so the refresh chain crosses a policy
	// version bump (a full-rebuild fallback) and must re-anchor the
	// incremental chain on the other side.
	u := spec.Users[0]
	path := u.Name
	if u.Project != "" {
		path = u.Project + "/" + u.Name
	}
	spec.Edits = append(spec.Edits, ShareEdit{At: spec.Duration / 2, Path: path, NewShare: u.Share * 1.5})

	rec := &refreshModeRecorder{}
	res, err := Run(spec, Options{Checkers: append(DefaultCheckers(), rec)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations:\n%v\n%s", res.Violations, res.TraceDump)
	}
	if rec.modes[fcs.RefreshIncremental] == 0 {
		t.Fatalf("incremental refresh never observed (modes sampled: %v)", rec.modes)
	}
	t.Logf("refresh modes sampled at check events: %v", rec.modes)
}

// TestConvergenceCoverage guards against generator drift silencing the
// convergence invariant: a healthy fraction of seeds must stay
// perturbation-free so the checker actually runs in the fuzz sweep.
func TestConvergenceCoverage(t *testing.T) {
	eligible := 0
	for seed := int64(1); seed <= 100; seed++ {
		if Generate(seed).ConvergenceEligible() {
			eligible++
		}
	}
	if eligible < 10 {
		t.Fatalf("only %d/100 seeds are convergence-eligible; the invariant is nearly dead", eligible)
	}
	t.Logf("%d/100 seeds convergence-eligible", eligible)
}
