package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/testbed"
)

// fuzzSeeds returns how many seeds the fuzz sweep covers: AEQUUS_FUZZ_SEEDS
// when set (CI runs 50+), a fast default otherwise.
func fuzzSeeds(t *testing.T) int {
	if v := os.Getenv("AEQUUS_FUZZ_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad AEQUUS_FUZZ_SEEDS %q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 12
}

// writeArtifact persists a failing scenario's reproduction data under
// AEQUUS_ARTIFACT_DIR (no-op when unset) so CI can upload it.
func writeArtifact(t *testing.T, spec *Spec, res *Result, events int) {
	dir := os.Getenv("AEQUUS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed: %d\nrepro: %s\n", spec.Seed, ReproCommand(spec, events))
	fmt.Fprintf(&b, "topology: %d sites x %d cores, rm=%s strict=%v\n",
		spec.Sites, spec.CoresPerSite, spec.RM, spec.StrictOrder)
	fmt.Fprintf(&b, "duration=%s users=%d jobs=%d edits=%d faults=%d\n",
		spec.Duration, len(spec.Users), len(spec.Jobs), len(spec.Edits), len(spec.Faults))
	fmt.Fprintf(&b, "events=%d submitted=%d completed=%d fingerprint=%s\n",
		res.Events, res.Submitted, res.Completed, res.Fingerprint)
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	if res.TraceDump != "" {
		fmt.Fprintf(&b, "%s\n", res.TraceDump)
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.txt", spec.Seed))
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestScenarioFuzz is the fuzz gauntlet: N random seeds, each a full
// multi-site scenario under continuous invariant checking. A failing seed
// is shrunk to the smallest failing event prefix and reported with the
// exact one-command reproduction.
func TestScenarioFuzz(t *testing.T) {
	n := fuzzSeeds(t)
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := Generate(seed)
			res, err := Run(spec, Options{FailFast: true})
			if err != nil {
				t.Fatalf("seed %d: run error: %v", seed, err)
			}
			if !res.Failed() {
				return
			}
			events, small, runs, serr := Shrink(spec, Options{})
			if serr != nil {
				t.Fatalf("seed %d: shrink error: %v", seed, serr)
			}
			writeArtifact(t, spec, small, events)
			t.Errorf("seed %d: %d violation(s); shrunk to %d events in %d runs\nfirst: %s\nreproduce with:\n  %s",
				seed, len(res.Violations), events, runs, small.Violations[0], ReproCommand(spec, events))
		})
	}
}

// TestScenarioReplay replays one scenario from the environment — the
// reproduction entry point the fuzzer and the harness print:
//
//	AEQUUS_SEED=7 [AEQUUS_EVENTS=123] [AEQUUS_CRASH=1] [AEQUUS_SABOTAGE=1] go test ./internal/scenario -run TestScenarioReplay
//
// AEQUUS_CRASH=1 regenerates the spec through GenerateCrash (the crash
// gauntlet's generator) instead of Generate. It runs the scenario twice and
// fails with full details if any invariant is violated, additionally
// proving the two runs are bit-identical.
func TestScenarioReplay(t *testing.T) {
	sv := os.Getenv("AEQUUS_SEED")
	if sv == "" {
		t.Skip("set AEQUUS_SEED to replay a scenario")
	}
	seed, err := strconv.ParseInt(sv, 10, 64)
	if err != nil {
		t.Fatalf("bad AEQUUS_SEED %q: %v", sv, err)
	}
	opts := Options{FailFast: true}
	if ev := os.Getenv("AEQUUS_EVENTS"); ev != "" {
		opts.MaxEvents, err = strconv.Atoi(ev)
		if err != nil {
			t.Fatalf("bad AEQUUS_EVENTS %q: %v", ev, err)
		}
	}
	generate := Generate
	if os.Getenv("AEQUUS_CRASH") == "1" {
		generate = GenerateCrash
	}
	spec := generate(seed)
	if sb := os.Getenv("AEQUUS_SABOTAGE"); sb != "" {
		k, err := strconv.Atoi(sb)
		if err != nil {
			t.Fatalf("bad AEQUUS_SABOTAGE %q: %v", sb, err)
		}
		spec.Sabotage = SabotageKind(k)
	}
	first, err := Run(spec, opts)
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	second, err := Run(generate(seed).withSabotage(spec.Sabotage), opts)
	if err != nil {
		t.Fatalf("replay error: %v", err)
	}
	if first.Fingerprint != second.Fingerprint {
		t.Errorf("replay diverged: fingerprints %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	if first.Failed() {
		var b strings.Builder
		for _, v := range first.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
		if first.TraceDump != "" {
			fmt.Fprintf(&b, "%s\n", first.TraceDump)
		}
		t.Fatalf("seed %d (events=%d): %d violation(s):\n%s", seed, first.Events, len(first.Violations), b.String())
	}
	t.Logf("seed %d: clean run, %d events, fingerprint %s", seed, first.Events, first.Fingerprint)
}

// withSabotage returns the spec with the sabotage mode applied (helper for
// replaying sabotaged scenarios from a fresh Generate).
func (s *Spec) withSabotage(k SabotageKind) *Spec {
	s.Sabotage = k
	return s
}

// TestScenarioDeterminism proves the bit-identical-replay property the
// whole harness rests on: same seed, same options → same fingerprint, same
// event count, same violations, across both RM substrates.
func TestScenarioDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 8, 21} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			a, err := Run(Generate(seed), Options{})
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(Generate(seed), Options{})
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Fingerprint != b.Fingerprint {
				t.Errorf("fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
			}
			if a.Events != b.Events || a.Submitted != b.Submitted || a.Completed != b.Completed {
				t.Errorf("counters differ: (%d,%d,%d) vs (%d,%d,%d)",
					a.Events, a.Submitted, a.Completed, b.Events, b.Submitted, b.Completed)
			}
			if !reflect.DeepEqual(a.Violations, b.Violations) {
				t.Errorf("violations differ:\n%v\nvs\n%v", a.Violations, b.Violations)
			}
		})
	}
}

// TestScenarioPrefixDeterminism proves the shrinker's lever: running with a
// smaller event budget replays an exact prefix — dispatch/completion counts
// at the truncation point match the full run's state at the same point.
func TestScenarioPrefixDeterminism(t *testing.T) {
	spec := Generate(5)
	full, err := Run(spec, Options{})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	budget := full.Events / 3
	a, err := Run(Generate(5), Options{MaxEvents: budget})
	if err != nil {
		t.Fatalf("prefix run: %v", err)
	}
	b, err := Run(Generate(5), Options{MaxEvents: budget})
	if err != nil {
		t.Fatalf("prefix replay: %v", err)
	}
	if a.Events != budget || b.Events != budget {
		t.Fatalf("prefix runs executed %d/%d events, want %d", a.Events, b.Events, budget)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("prefix fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
}

// sabotageCases are the deliberate corruptions whose detection (and
// bit-identical replay) the suite proves.
var sabotageCases = []struct {
	name string
	kind SabotageKind
}{
	{"phantom-usage", SabotagePhantomUsage},
	{"drop-completion", SabotageDropCompletion},
}

// TestSabotageDetected proves the ledger-equivalence checker catches a
// corrupted accounting pipeline from both directions, that the failure
// shrinks to a smaller event prefix, and that the shrunk failure replays
// bit-identically — the acceptance property of the whole harness.
func TestSabotageDetected(t *testing.T) {
	for _, tc := range sabotageCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const seed = 11
			mk := func() *Spec { return Generate(seed).withSabotage(tc.kind) }
			res, err := Run(mk(), Options{FailFast: true})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Failed() {
				t.Fatalf("sabotage %v went undetected", tc.kind)
			}
			found := false
			for _, v := range res.Violations {
				if v.Invariant == "ledger-equivalence" {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("expected a ledger-equivalence violation, got %v", res.Violations)
			}

			events, small, _, err := Shrink(mk(), Options{})
			if err != nil {
				t.Fatalf("shrink: %v", err)
			}
			if events <= 0 || events > res.Events {
				t.Fatalf("shrunk budget %d out of range (full failure at %d events)", events, res.Events)
			}
			if !small.Failed() {
				t.Fatal("shrunk run does not fail")
			}

			// The printed reproduction must replay the identical failure.
			cmd := ReproCommand(mk(), events)
			for _, frag := range []string{
				fmt.Sprintf("AEQUUS_SEED=%d", seed),
				fmt.Sprintf("AEQUUS_EVENTS=%d", events),
				fmt.Sprintf("AEQUUS_SABOTAGE=%d", tc.kind),
				"TestScenarioReplay",
			} {
				if !strings.Contains(cmd, frag) {
					t.Errorf("repro command %q missing %q", cmd, frag)
				}
			}
			a, err := Run(mk(), Options{FailFast: true, MaxEvents: events})
			if err != nil {
				t.Fatalf("replay a: %v", err)
			}
			b, err := Run(mk(), Options{FailFast: true, MaxEvents: events})
			if err != nil {
				t.Fatalf("replay b: %v", err)
			}
			if a.Fingerprint != b.Fingerprint {
				t.Errorf("sabotage replay diverged: %s vs %s", a.Fingerprint, b.Fingerprint)
			}
			if !a.Failed() || !reflect.DeepEqual(a.Violations, b.Violations) {
				t.Errorf("replayed violations differ or vanished:\n%v\nvs\n%v", a.Violations, b.Violations)
			}
		})
	}
}

// TestGenerateDeterministicAndBounded pins Generate's contract: a pure
// function of the seed, with every scenario inside the documented bounds.
func TestGenerateDeterministicAndBounded(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		if a.Sites < 2 || a.Sites > 4 {
			t.Errorf("seed %d: %d sites outside [2,4]", seed, a.Sites)
		}
		if a.CoresPerSite < 8 || a.CoresPerSite > 20 {
			t.Errorf("seed %d: %d cores outside [8,20]", seed, a.CoresPerSite)
		}
		if a.RM != testbed.RMSlurm && a.RM != testbed.RMMaui {
			t.Errorf("seed %d: unknown RM %q", seed, a.RM)
		}
		if len(a.ExchangeSkew) != a.Sites {
			t.Errorf("seed %d: %d skews for %d sites", seed, len(a.ExchangeSkew), a.Sites)
		}
		for i, sk := range a.ExchangeSkew {
			if sk < 0 || sk >= a.ExchangeInterval {
				t.Errorf("seed %d: skew[%d]=%s outside [0,%s)", seed, i, sk, a.ExchangeInterval)
			}
		}
		if len(a.Users) < 3 {
			t.Errorf("seed %d: only %d users", seed, len(a.Users))
		}
		if len(a.Jobs) == 0 {
			t.Errorf("seed %d: no jobs", seed)
		}
		users := map[string]bool{}
		for _, u := range a.Users {
			users[u.Name] = true
		}
		for _, j := range a.Jobs {
			if !users[j.User] {
				t.Errorf("seed %d: job %d owned by unknown user %q", seed, j.ID, j.User)
			}
			if j.Procs < 1 || j.Procs > a.CoresPerSite {
				t.Errorf("seed %d: job %d procs %d outside [1,%d]", seed, j.ID, j.Procs, a.CoresPerSite)
			}
			if j.Duration <= 0 || j.SubmitOffset < 0 || j.SubmitOffset > a.Duration {
				t.Errorf("seed %d: job %d has bad timing (%s at +%s)", seed, j.ID, j.Duration, j.SubmitOffset)
			}
		}
		for _, f := range a.Faults {
			if f.Site == f.Peer || f.Site >= a.Sites || f.Peer >= a.Sites {
				t.Errorf("seed %d: bad fault endpoints %d->%d", seed, f.Site, f.Peer)
			}
		}
		if _, err := a.InitialPolicy(); err != nil {
			t.Errorf("seed %d: initial policy: %v", seed, err)
		}
	}
}
