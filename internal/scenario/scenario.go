// Package scenario is the deterministic whole-system simulation harness:
// it composes the event kernel, virtual clusters, both resource-manager
// substrates, all five Aequus services (via core.Site) and the fault
// injector into randomized but fully seed-reproducible multi-site
// scenarios, and layers continuous invariant checkers over every step.
//
// Everything random — topology, job mix, user churn, share-tree edits,
// peer faults, exchange-interval skew — derives from a single rand.Source
// seeded by Spec.Seed, so any failure replays bit-identically:
//
//	AEQUUS_SEED=<seed> [AEQUUS_EVENTS=<n>] go test ./internal/scenario -run TestScenarioReplay
//
// The fuzzer (TestScenarioFuzz) runs many seeds, shrinks a failure to the
// smallest failing event prefix, and prints exactly that command.
package scenario

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/policy"
	"repro/internal/testbed"
)

// Start is the fixed simulated epoch of every scenario. Scenarios differ
// only by seed, never by wall-clock state.
var Start = time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)

// UserSpec is one grid user in the scenario's population.
type UserSpec struct {
	// Name is the grid identity (also the policy leaf name).
	Name string
	// Share is the raw policy share (normalized by the policy tree).
	Share float64
	// Project is the enclosing policy group ("" = directly under the
	// root). Grouping exercises hierarchical share trees.
	Project string
	// JoinAt is the offset from Start at which the user joins the grid
	// (its policy leaf is added and its first job may be submitted).
	// Zero means present from the beginning.
	JoinAt time.Duration
}

// JobSpec is one pre-generated job of the scenario's workload.
type JobSpec struct {
	ID           int64
	User         string
	SubmitOffset time.Duration
	Duration     time.Duration
	Procs        int
}

// ShareEdit changes one policy node's share mid-run — the administrator
// action the PDS distributes.
type ShareEdit struct {
	// At is the offset from Start at which the edit is applied.
	At time.Duration
	// Path is the policy path of the edited node (e.g. "projA/u2").
	Path string
	// NewShare replaces the node's raw share.
	NewShare float64
}

// FaultSpec schedules one fault window on the exchange path from one
// site's USS to a peer's.
type FaultSpec struct {
	// Site is the pulling site, Peer the remote site index.
	Site, Peer int
	// From/Until bound the window as offsets from Start.
	From, Until time.Duration
	// Kind is the injected fault (Error, Timeout, Reset or Flap; Latency
	// is a no-op under the deadline-free sim resolve and is not generated).
	Kind faultinject.Kind
	// Rate is the Flap probability.
	Rate float64
}

// RestartSpec schedules one kill-and-recover of a site's Aequus service
// stack mid-run. The cluster and its resource manager keep running (they are
// separate processes from aequusd); the site's services are torn down and
// rebuilt from the durable WAL and snapshots, and recovery must reproduce
// the pre-kill usage state and published priorities bit-identically.
type RestartSpec struct {
	// Site is the restarted site index.
	Site int
	// At is the offset from Start of the kill.
	At time.Duration
}

// SabotageKind deliberately corrupts the system mid-run so tests can prove
// the invariant checkers detect it and that the failure replays
// bit-identically from its seed.
type SabotageKind int

// Sabotage modes.
const (
	// SabotageNone runs the scenario honestly.
	SabotageNone SabotageKind = iota
	// SabotagePhantomUsage reports usage for a ghost user directly to
	// site 0's USS, bypassing the ledger — the ledger-equivalence checker
	// must fire.
	SabotagePhantomUsage
	// SabotageDropCompletion silently drops one job completion from the
	// independent ledger — the ledger-equivalence checker must fire from
	// the other direction.
	SabotageDropCompletion
)

// Spec is a fully materialized scenario: replaying a Spec is deterministic,
// and Generate(seed) always yields the same Spec for the same seed.
type Spec struct {
	Seed int64

	// Topology.
	Sites        int
	CoresPerSite int
	RM           testbed.RMKind
	StrictOrder  bool

	// Timing.
	Duration         time.Duration
	BinWidth         time.Duration
	ExchangeInterval time.Duration
	// ExchangeSkew offsets each site's exchange ticks so rounds do not
	// align across sites — the exchange-interval skew of the update-delay
	// analysis.
	ExchangeSkew    []time.Duration
	RefreshInterval time.Duration
	LibTTL          time.Duration
	ReprioInterval  time.Duration
	// CheckInterval is how often the invariant checkers run.
	CheckInterval time.Duration

	// Population and workload.
	Projects []string
	Users    []UserSpec
	Jobs     []JobSpec

	// Perturbations.
	Edits  []ShareEdit
	Faults []FaultSpec

	// Fairshare parameters.
	DistanceWeight float64

	// NoDecay runs the sites with usage.None instead of the exponential
	// half-life decay. Under decay every user's total changes bitwise at
	// every UMS pull, so the delta log degenerates to all-full sets; with
	// decay off, only users with fresh completions move between pulls and
	// the FCS's incremental recalc path is actually exercised.
	NoDecay bool

	// Restarts kill and recover individual sites' service stacks mid-run.
	// Only generated for NoDecay scenarios: under exponential decay a
	// freshly rebuilt tracker and one that evolved through the run differ
	// in the last ulps, so bit-identical recovery is only a meaningful
	// target without decay.
	Restarts []RestartSpec
	// Crash marks a spec produced by GenerateCrash, so replay tooling
	// regenerates it through the same generator (AEQUUS_CRASH=1).
	Crash bool

	// Sabotage corrupts the run on purpose (tests only; Generate never
	// sets it).
	Sabotage SabotageKind
}

// ConvergenceEligible reports whether the convergence invariant is
// meaningful for this scenario: demand is calibrated to the policy shares
// and nothing perturbs the system mid-run (no faults, edits or churn).
func (s *Spec) ConvergenceEligible() bool {
	if len(s.Faults) > 0 || len(s.Edits) > 0 || len(s.Restarts) > 0 || s.Sabotage != SabotageNone {
		return false
	}
	for _, u := range s.Users {
		if u.JoinAt > 0 {
			return false
		}
	}
	return true
}

// InitialPolicy builds the policy tree at Start: projects and the users
// present from the beginning. Joined-later users are added by churn events.
func (s *Spec) InitialPolicy() (*policy.Tree, error) {
	t := policy.NewTree()
	projShare := map[string]float64{}
	initialMembers := map[string]int{}
	for _, u := range s.Users {
		if u.Project != "" {
			projShare[u.Project] += u.Share
			if u.JoinAt <= 0 {
				initialMembers[u.Project]++
			}
		}
	}
	for _, p := range s.Projects {
		// A project without any initial member would be a childless group
		// node — Leaves() would misread it as a user. Such projects are
		// created by the join event of their first member instead.
		if projShare[p] <= 0 || initialMembers[p] == 0 {
			continue
		}
		if _, err := t.Add("", p, projShare[p]); err != nil {
			return nil, err
		}
	}
	for _, u := range s.Users {
		if u.JoinAt > 0 {
			continue
		}
		if _, err := t.Add(u.Project, u.Name, u.Share); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// userNames returns every user name (including joined-later ones) in spec
// order.
func (s *Spec) userNames() []string {
	out := make([]string, len(s.Users))
	for i, u := range s.Users {
		out[i] = u.Name
	}
	return out
}

// Generate materializes the scenario for a seed. Every random draw comes
// from one rand.Source, so the mapping seed → Spec is a pure function.
func Generate(seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	s := &Spec{Seed: seed}

	// Topology: small enough that a run costs tens of milliseconds, varied
	// enough to cover both substrates, strict and backfill dispatch, and
	// 2–4-site meshes.
	s.Sites = 2 + rng.Intn(3)
	s.CoresPerSite = 8 + 4*rng.Intn(4)
	if rng.Intn(2) == 0 {
		s.RM = testbed.RMSlurm
		s.StrictOrder = rng.Intn(4) == 0
	} else {
		s.RM = testbed.RMMaui
	}

	// Timing: 2–4 simulated hours; service intervals jittered around the
	// testbed's fractional defaults, with per-site exchange skew.
	s.Duration = time.Duration(2+rng.Intn(3)) * time.Hour
	base := s.Duration / 240
	s.BinWidth = s.Duration / time.Duration(180+60*rng.Intn(3))
	s.ExchangeInterval = base * time.Duration(1+rng.Intn(3))
	s.ExchangeSkew = make([]time.Duration, s.Sites)
	for i := range s.ExchangeSkew {
		s.ExchangeSkew[i] = time.Duration(rng.Int63n(int64(s.ExchangeInterval)))
	}
	s.RefreshInterval = base * time.Duration(1+rng.Intn(2))
	s.LibTTL = s.RefreshInterval / 2
	s.ReprioInterval = base * time.Duration(1+rng.Intn(2))
	s.CheckInterval = s.Duration / 48
	s.DistanceWeight = 0.25 * float64(1+rng.Intn(3))

	// Population: 3–6 users, optionally grouped into two projects, with
	// a 30% chance of one extra user joining mid-run (churn).
	nUsers := 3 + rng.Intn(4)
	hierarchical := rng.Intn(5) < 2
	if hierarchical {
		s.Projects = []string{"projA", "projB"}
	}
	for i := 0; i < nUsers; i++ {
		u := UserSpec{
			Name:  userName(i),
			Share: 0.5 + 2*rng.Float64(),
		}
		if hierarchical {
			u.Project = s.Projects[rng.Intn(len(s.Projects))]
		}
		s.Users = append(s.Users, u)
	}
	if rng.Intn(10) < 3 {
		u := UserSpec{
			Name:   userName(nUsers),
			Share:  0.5 + 2*rng.Float64(),
			JoinAt: time.Duration(float64(s.Duration) * (0.2 + 0.3*rng.Float64())),
		}
		if hierarchical {
			u.Project = s.Projects[rng.Intn(len(s.Projects))]
		}
		s.Users = append(s.Users, u)
	}

	// Perturbations: share edits (30%) and exchange-path faults (40%).
	if rng.Intn(10) < 3 {
		for n := 1 + rng.Intn(2); n > 0; n-- {
			u := s.Users[rng.Intn(nUsers)]
			path := u.Name
			if u.Project != "" {
				path = u.Project + "/" + u.Name
			}
			s.Edits = append(s.Edits, ShareEdit{
				At:       time.Duration(float64(s.Duration) * (0.2 + 0.5*rng.Float64())),
				Path:     path,
				NewShare: u.Share * (0.5 + 1.5*rng.Float64()),
			})
		}
	}
	if rng.Intn(10) < 4 {
		kinds := []faultinject.Kind{faultinject.Error, faultinject.Timeout, faultinject.Reset, faultinject.Flap}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			site := rng.Intn(s.Sites)
			peer := rng.Intn(s.Sites)
			if peer == site {
				peer = (peer + 1) % s.Sites
			}
			from := time.Duration(float64(s.Duration) * (0.1 + 0.6*rng.Float64()))
			s.Faults = append(s.Faults, FaultSpec{
				Site: site, Peer: peer,
				From:  from,
				Until: from + time.Duration(float64(s.Duration)*(0.05+0.15*rng.Float64())),
				Kind:  kinds[rng.Intn(len(kinds))],
				Rate:  0.3 + 0.6*rng.Float64(),
			})
		}
	}

	s.generateJobs(rng)

	// A quarter of the scenarios run without usage decay so the FCS's
	// incremental refresh path (and its snapshot-twin invariant) gets
	// continuous fuzz coverage too.
	s.NoDecay = rng.Intn(4) == 0

	// Half of the NoDecay scenarios also get one organic crash-and-restart,
	// so durable recovery is continuously fuzzed alongside everything else.
	// (This draw must stay the last one: it is conditional, and anything
	// added after it would shift across seeds depending on NoDecay.)
	if s.NoDecay && rng.Intn(2) == 0 {
		s.Restarts = append(s.Restarts, RestartSpec{
			Site: rng.Intn(s.Sites),
			At:   time.Duration(float64(s.Duration) * (0.3 + 0.5*rng.Float64())),
		})
	}
	return s
}

// GenerateCrash materializes the crash-gauntlet variant of a seed: the
// scenario Generate yields, forced to NoDecay, with its organic restart
// draw replaced by 1–3 seed-deterministic kill-and-restart events drawn
// from a derived source. GenerateCrash(seed) is a pure function of seed.
func GenerateCrash(seed int64) *Spec {
	s := Generate(seed)
	s.NoDecay = true
	s.Crash = true
	s.Restarts = nil
	rng := rand.New(rand.NewSource(seed ^ 0x0c4a54))
	for n := 1 + rng.Intn(3); n > 0; n-- {
		s.Restarts = append(s.Restarts, RestartSpec{
			Site: rng.Intn(s.Sites),
			At:   time.Duration(float64(s.Duration) * (0.25 + 0.6*rng.Float64())),
		})
	}
	sort.Slice(s.Restarts, func(i, j int) bool { return s.Restarts[i].At < s.Restarts[j].At })
	return s
}

// generateJobs builds the job mix: per-user Poisson-ish arrivals whose
// total demand is calibrated so each user's workload share matches their
// effective policy share (the paper's testbed discipline — policy targets
// equal trace usage fractions), at 75–95% of grid capacity.
func (s *Spec) generateJobs(rng *rand.Rand) {
	load := 0.75 + 0.2*rng.Float64()
	capacity := float64(s.Sites*s.CoresPerSite) * s.Duration.Seconds()

	// Effective share = user share / total raw share, weighted by the
	// fraction of the run the user is active (so late joiners demand
	// proportionally less and convergence targets stay meaningful for the
	// always-active population).
	var totalShare float64
	for _, u := range s.Users {
		totalShare += u.Share
	}

	var id int64
	maxDur := s.Duration / 8
	for _, u := range s.Users {
		active := s.Duration - u.JoinAt
		budget := u.Share / totalShare * capacity * load * (float64(active) / float64(s.Duration))

		// Draw shapes until the accumulated units can carry the budget
		// without any job hitting the duration cap: the longest unit (1.2)
		// scaled by budget/units must stay under maxDur, otherwise clamping
		// silently cuts a high-share user's demand below its calibrated
		// budget and the convergence target goes stale. At least 20 jobs per
		// user; the hard ceiling only guards degenerate draws.
		type shape struct {
			offset  time.Duration
			durUnit float64
			procs   int
		}
		minUnits := 1.2 * budget / maxDur.Seconds()
		var shapes []shape
		var units float64
		for len(shapes) < 20 || (units < minUnits && len(shapes) < 800) {
			procs := 1
			switch d := rng.Intn(20); {
			case d < 1:
				procs = 4
			case d < 4:
				procs = 2
			}
			if procs > s.CoresPerSite {
				procs = s.CoresPerSite
			}
			sh := shape{
				offset:  u.JoinAt + time.Duration(rng.Int63n(int64(float64(active)*0.9))),
				durUnit: 0.2 + rng.Float64(),
				procs:   procs,
			}
			shapes = append(shapes, sh)
			units += sh.durUnit * float64(sh.procs)
		}
		secPerUnit := budget / units
		for _, sh := range shapes {
			dur := time.Duration(sh.durUnit * secPerUnit * float64(time.Second))
			if dur > maxDur {
				dur = maxDur
			}
			if dur < time.Second {
				dur = time.Second
			}
			id++
			s.Jobs = append(s.Jobs, JobSpec{
				ID:           id,
				User:         u.Name,
				SubmitOffset: sh.offset,
				Duration:     dur,
				Procs:        sh.procs,
			})
		}
	}
}

func userName(i int) string {
	return "u" + string(rune('a'+i%26))
}
