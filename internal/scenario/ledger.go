package scenario

import (
	"sort"
	"time"

	"repro/internal/usage"
)

// LedgerRecord is one completed job as the harness observed it at the
// cluster, independent of everything the Aequus pipeline recorded.
type LedgerRecord struct {
	Site  int
	User  string
	Start time.Time
	Dur   time.Duration
	Procs int
}

// Ledger is the independent usage ledger behind the ledger-equivalence
// invariant: a flat list of completion records, recomputed from scratch on
// every check (O(records) per check, O(n²) over the run) and compared
// against the USS histograms' decayed totals. It deliberately shares no
// code with usage.Histogram beyond the published accounting rules: a job's
// full usage is attributed to the interval containing its completion time
// (which keeps closed intervals immutable for the incremental exchange),
// and decay ages are measured from bin midpoints.
type Ledger struct {
	records []LedgerRecord
}

// Add appends a completion record.
func (l *Ledger) Add(r LedgerRecord) { l.records = append(l.records, r) }

// Len returns the number of recorded completions.
func (l *Ledger) Len() int { return len(l.records) }

// ledgerBinStart floors t to the bin boundary, matching the histogram's
// epoch-aligned bins (floor division handles pre-epoch times).
func ledgerBinStart(t time.Time, width time.Duration) int64 {
	w := int64(width / time.Second)
	if w <= 0 {
		w = 1
	}
	u := t.Unix()
	q := u / w
	if u%w < 0 {
		q--
	}
	return q * w
}

// Totals recomputes one site's per-user decayed totals from first
// principles: each record's core-seconds land in the bin containing its
// completion time, and every bin is weighted by the decay of its midpoint
// age at `now`. The result is what the site's USS LocalTotals must equal
// (within float tolerance) if the whole accounting pipeline — batch
// ingestion, lock striping, incremental exponential trackers, memoized
// weight tables — is honest.
func (l *Ledger) Totals(site int, binWidth time.Duration, now time.Time, d usage.Decay) map[string]float64 {
	if d == nil {
		d = usage.None{}
	}
	if binWidth <= 0 {
		binWidth = time.Hour
	}
	type key struct {
		user string
		bin  int64
	}
	bins := map[key]float64{}
	for _, r := range l.records {
		if r.Site != site || r.Dur <= 0 || r.User == "" {
			continue
		}
		procs := r.Procs
		if procs < 1 {
			procs = 1
		}
		bs := ledgerBinStart(r.Start.Add(r.Dur), binWidth)
		bins[key{r.User, bs}] += r.Dur.Seconds() * float64(procs)
	}
	// Sum in sorted (user, bin) order so replays produce bit-identical
	// floating-point results — violation details must not differ between
	// two runs of the same seed.
	keys := make([]key, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].user != keys[j].user {
			return keys[i].user < keys[j].user
		}
		return keys[i].bin < keys[j].bin
	})
	out := map[string]float64{}
	for _, k := range keys {
		mid := time.Unix(k.bin, 0).Add(binWidth / 2)
		age := now.Sub(mid)
		if age < 0 {
			age = 0
		}
		out[k.user] += bins[k] * d.Weight(age)
	}
	return out
}
