package scenario

import (
	"testing"

	"repro/internal/telemetry/span"
)

// TestScenarioTracesExchange runs one generated multi-site scenario and
// asserts the span recorder captured a complete exchange trace: a
// "uss.exchange" root whose per-peer "uss.pull" children are linked by
// parent ID and carry the peer/breaker/retry attributes — the shape the
// /debug/aequus surface and failure dumps rely on.
func TestScenarioTracesExchange(t *testing.T) {
	res, err := Run(Generate(3), Options{})
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if res.Spans == nil || res.Spans.Recorded() == 0 {
		t.Fatal("scenario run recorded no spans")
	}

	attr := func(sp *span.Span, key string) (string, bool) {
		for _, a := range sp.Attrs {
			if a.Key == key {
				return a.Value, true
			}
		}
		return "", false
	}

	checked := false
	for _, tr := range res.Spans.Traces(0) {
		var root *span.Span
		for _, sp := range tr.Spans {
			if sp.Name == "uss.exchange" {
				root = sp
				break
			}
		}
		if root == nil {
			continue
		}
		if _, ok := attr(root, "site"); !ok {
			t.Errorf("exchange root %s has no site attr: %+v", span.FormatID(root.ID), root.Attrs)
		}
		pulls := 0
		for _, sp := range tr.Spans {
			if sp.Name != "uss.pull" || sp.ParentID != root.ID {
				continue
			}
			pulls++
			if sp.TraceID != root.TraceID {
				t.Errorf("pull span crossed traces: %s vs %s", sp.TraceID, root.TraceID)
			}
			if _, ok := attr(sp, "peer"); !ok {
				t.Errorf("pull span missing peer attr: %+v", sp.Attrs)
			}
			if v, ok := attr(sp, "breaker"); !ok || v == "" {
				t.Errorf("pull span missing breaker attr: %+v", sp.Attrs)
			}
		}
		if pulls == 0 {
			continue // root retained but its children already overwritten
		}
		checked = true
		break
	}
	if !checked {
		t.Fatalf("no complete uss.exchange trace with uss.pull children among %d retained spans",
			len(res.Spans.Snapshot()))
	}
}
