package scenario

import "fmt"

// Shrink minimizes a failing scenario to the smallest event budget that
// still violates an invariant. Because a run is a pure function of
// (Spec, Options), executing with MaxEvents = n replays the exact n-event
// prefix of the full run — so the shrinker needs no event surgery, just a
// binary search over the budget. The search relies on approximate
// monotonicity (a failure present at budget n is usually present at any
// larger budget); where that does not hold it still returns some failing
// budget, never a passing one.
//
// It returns the smallest found budget, the failing result at that budget,
// and the number of verification runs performed.
func Shrink(spec *Spec, opts Options) (int, *Result, int, error) {
	opts.FailFast = true
	opts.MaxEvents = 0
	full, err := Run(spec, opts)
	if err != nil {
		return 0, nil, 1, err
	}
	runs := 1
	if !full.Failed() {
		return 0, full, runs, nil
	}

	lo, hi := 1, full.Events
	best := full
	for lo < hi {
		mid := lo + (hi-lo)/2
		opts.MaxEvents = mid
		res, err := Run(spec, opts)
		runs++
		if err != nil {
			return 0, nil, runs, err
		}
		if res.Failed() {
			hi = mid
			best = res
		} else {
			lo = mid + 1
		}
	}
	return hi, best, runs, nil
}

// ReproCommand renders the one-command reproduction for a failing scenario:
// paste it into a shell at the repo root and the exact failure replays
// bit-identically. events <= 0 replays the full run.
func ReproCommand(spec *Spec, events int) string {
	cmd := fmt.Sprintf("AEQUUS_SEED=%d", spec.Seed)
	if events > 0 {
		cmd += fmt.Sprintf(" AEQUUS_EVENTS=%d", events)
	}
	if spec.Crash {
		cmd += " AEQUUS_CRASH=1"
	}
	if spec.Sabotage != SabotageNone {
		cmd += fmt.Sprintf(" AEQUUS_SABOTAGE=%d", spec.Sabotage)
	}
	return cmd + " go test ./internal/scenario -run TestScenarioReplay"
}
