package scenario

import (
	"context"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durability"
	"repro/internal/eventsim"
	"repro/internal/fairshare"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/maui"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/services/irs"
	"repro/internal/services/uss"
	"repro/internal/slurm"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/usage"
)

// RM is what the harness needs from a resource manager beyond the shared
// interface: a view of the pending queue for starvation checks.
type RM interface {
	sched.ResourceManager
	Pending() []*sched.Job
}

// Dispatch is one observed job start, recorded through the schedulers'
// OnStart hooks with the queue priority and scheduling pass it belonged to.
type Dispatch struct {
	Site     int
	Pass     uint64
	Priority float64
	JobID    int64
	User     string
	Procs    int
	Submit   time.Time
	Start    time.Time
}

// Violation is one detected invariant breach.
type Violation struct {
	At        time.Time
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.At.Format(time.RFC3339), v.Invariant, v.Detail)
}

// Options controls one harness run.
type Options struct {
	// MaxEvents bounds the number of kernel events executed (0 = no
	// bound). Because a run is deterministic, executing with a smaller
	// budget replays an exact prefix — the shrinker's lever.
	MaxEvents int
	// FailFast stops stepping after the first violation (the fuzzer's
	// mode); false records all violations over the full run.
	FailFast bool
	// Checkers overrides DefaultCheckers (nil = defaults).
	Checkers []Checker
}

// Result is one run's outcome.
type Result struct {
	Spec        *Spec
	Events      int
	Submitted   int64
	Completed   int64
	QueuedAtEnd int
	Violations  []Violation
	// Fingerprint digests every dispatch, completion, violation and the
	// final per-user usage totals; two runs of the same Spec and Options
	// must produce identical fingerprints.
	Fingerprint string
	// Spans is the run's trace recorder — every site's services record into
	// it, on the simulated clock. (Spans are diagnostic output and are not
	// part of the fingerprint.)
	Spans *span.Recorder
	// TraceDump holds the formatted tail of the span buffer when the run
	// violated an invariant ("" on clean runs) — the first thing to print
	// when debugging a failure.
	TraceDump string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Harness is the live state of one scenario run, exposed to checkers.
type Harness struct {
	Spec     *Spec
	Kernel   *eventsim.Kernel
	Sites    []*core.Site
	Clusters []*cluster.Cluster
	RMs      []RM
	Ledger   *Ledger
	Decay    usage.Decay
	Spans    *span.Recorder

	pol        *policy.Tree
	dispatches []Dispatch
	violations []Violation
	completed  int64
	events     int
	lastNow    time.Time
	dropArmed  bool
	digest     hash.Hash64

	// initialPol is the never-edited policy of Start — what a rebuilt site
	// boots from before the WAL replays any MutPolicy edits.
	initialPol *policy.Tree
	// durables holds the per-site durable logs (nil for sites that never
	// restart and so run memory-only, like the default aequusd mode).
	durables []*durability.Log
	// dataDirs holds the WAL directories of durable sites ("" otherwise).
	dataDirs []string
	// peers holds each site's outgoing peer handles (late-binding proxies,
	// fault injectors already spliced in), so a rebuilt site reconnects to
	// exactly the mesh it had.
	peers [][]uss.Peer
}

// sitePeer is a late-binding peer handle: it resolves the target site's USS
// at call time, so a service stack rebuilt by a restart event is immediately
// what its peers talk to. A captured *uss.Service would go stale the moment
// its site restarts.
type sitePeer struct {
	h *Harness
	j int
}

func (p sitePeer) Site() string { return p.h.Sites[p.j].USS.Site() }

func (p sitePeer) RecordsSince(ctx context.Context, t time.Time) ([]usage.Record, error) {
	return p.h.Sites[p.j].USS.RecordsSince(ctx, t)
}

// siteFairshare and siteJobComp are the same late binding for the RM
// plug-ins: the resource manager outlives a site restart (it is a separate
// process from aequusd), so its call-outs must reach whatever service stack
// currently backs the site.
type siteFairshare struct {
	h *Harness
	i int
}

func (siteFairshare) Name() string { return "aequus" }

func (f siteFairshare) Fairshare(localUser string) (float64, error) {
	return slurm.AequusFairshare{Lib: f.h.Sites[f.i].Lib}.Fairshare(localUser)
}

type siteJobComp struct {
	h *Harness
	i int
}

func (c siteJobComp) JobCompleted(j *sched.Job) {
	slurm.AequusJobComp{Lib: c.h.Sites[c.i].Lib}.JobCompleted(j)
}

// Policy returns the current (possibly edited) policy tree; checkers must
// treat it as read-only.
func (h *Harness) Policy() *policy.Tree { return h.pol }

// Dispatches returns the dispatch log; checkers must treat it as read-only.
func (h *Harness) Dispatches() []Dispatch { return h.dispatches }

// Violations returns the violations recorded so far.
func (h *Harness) Violations() []Violation { return h.violations }

// addViolation records a breach and folds it into the fingerprint.
func (h *Harness) addViolation(invariant, format string, args ...interface{}) {
	v := Violation{At: h.Kernel.Now(), Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	h.violations = append(h.violations, v)
	fmt.Fprintf(h.digest, "V|%s\n", v.String())
}

// TargetShares returns each leaf user's effective normalized target share
// under the current policy (the product of normalized shares along the
// leaf's path) — the quantity usage ratios must converge toward.
func (h *Harness) TargetShares() map[string]float64 {
	out := map[string]float64{}
	for _, l := range h.pol.Leaves() {
		share := 1.0
		for _, s := range l.Shares {
			share *= s
		}
		out[l.User] = share
	}
	return out
}

// CumulativeUsage sums consumed core-seconds per grid user across all
// clusters (running jobs included), in site order for deterministic float
// accumulation.
func (h *Harness) CumulativeUsage() map[string]float64 {
	out := map[string]float64{}
	for _, cl := range h.Clusters {
		per := cl.UsageByUser()
		users := make([]string, 0, len(per))
		for u := range per {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, u := range users {
			out[u] += per[u]
		}
	}
	return out
}

// localPrefix is the per-site grid→local identity mapping (same convention
// as the testbed).
func localPrefix(i int) string { return fmt.Sprintf("s%02d_", i) }

// Run executes the scenario and returns its result. Two calls with the
// same Spec and Options produce bit-identical results.
func Run(spec *Spec, opts Options) (*Result, error) {
	// Reseed the package-default retry jitter so even code paths that fall
	// back to it are covered by the scenario's seed.
	resilience.SeedJitter(spec.Seed)

	var decay usage.Decay = usage.ExponentialHalfLife{HalfLife: spec.Duration / 6}
	if spec.NoDecay {
		decay = usage.None{}
	}

	kernel := eventsim.New(Start)
	h := &Harness{
		Spec:   spec,
		Kernel: kernel,
		Ledger: &Ledger{},
		Decay:  decay,
		// The recorder runs on the sim clock, so span timestamps line up
		// with the violation timestamps in a failure report.
		Spans:   span.NewRecorder(span.Config{Capacity: 1024, Clock: kernel.Clock()}),
		digest:  fnv.New64a(),
		lastNow: Start,
	}

	pol, err := spec.InitialPolicy()
	if err != nil {
		return nil, fmt.Errorf("scenario: initial policy: %w", err)
	}
	h.pol = pol
	h.initialPol = pol

	end := Start.Add(spec.Duration)
	done := func() bool { return kernel.Now().After(end) }

	// Durable logs for the sites a restart will kill: their usage state
	// must survive into the rebuilt stack. SyncNone matches the scenario's
	// failure model — the process dies but the machine does not, so writes
	// that reached the page cache survive without paying an fsync per
	// simulated commit.
	h.durables = make([]*durability.Log, spec.Sites)
	h.dataDirs = make([]string, spec.Sites)
	defer func() {
		for _, d := range h.durables {
			if d != nil {
				d.Close()
			}
		}
		for _, dir := range h.dataDirs {
			if dir != "" {
				os.RemoveAll(dir)
			}
		}
	}()
	for _, r := range spec.Restarts {
		if r.Site < 0 || r.Site >= spec.Sites {
			return nil, fmt.Errorf("scenario: restart of unknown site %d", r.Site)
		}
		if h.dataDirs[r.Site] != "" {
			continue
		}
		dir, err := os.MkdirTemp("", "aequus-scenario-wal-")
		if err != nil {
			return nil, err
		}
		h.dataDirs[r.Site] = dir
		if h.durables[r.Site], err = h.openLog(r.Site); err != nil {
			return nil, err
		}
	}

	// Assemble one full Aequus stack + cluster + RM per site.
	for i := 0; i < spec.Sites; i++ {
		i := i
		site, err := h.buildSite(i)
		if err != nil {
			return nil, err
		}
		if h.durables[i] != nil {
			// A fresh log opens in the recovering state: the trivial empty
			// replay unblocks commits.
			if err := site.Recover(); err != nil {
				return nil, err
			}
			h.durables[i].MarkReady()
		}
		h.Sites = append(h.Sites, site)

		cl, err := cluster.New(site.Name, spec.CoresPerSite, kernel)
		if err != nil {
			return nil, err
		}
		h.Clusters = append(h.Clusters, cl)

		// The harness's completion observer runs before the schedulers'
		// job-completion plug-ins (registration order), so the ledger has
		// the record within the same event that reports usage to the USS.
		cl.OnComplete(func(j *sched.Job) { h.observeCompletion(i, j) })

		onStart := func(j *sched.Job, priority float64, pass uint64) {
			h.observeStart(i, j, priority, pass)
		}
		switch spec.RM {
		case testbed.RMSlurm:
			h.RMs = append(h.RMs, slurm.New(slurm.Config{
				Cluster: cl,
				Priority: &slurm.Multifactor{
					FS:      siteFairshare{h: h, i: i},
					Weights: sched.FairshareOnly(),
				},
				JobComp:              []slurm.JobCompHandler{siteJobComp{h: h, i: i}},
				ReprioritizeInterval: spec.ReprioInterval,
				StrictOrder:          spec.StrictOrder,
				OnStart:              onStart,
			}))
		case testbed.RMMaui:
			h.RMs = append(h.RMs, maui.New(maui.Config{
				Cluster: cl,
				Weights: maui.Weights{Fairshare: 1},
				Callouts: maui.Callouts{
					FairsharePriority: func(localUser string) (float64, error) {
						return h.Sites[i].Lib.PriorityForLocalUser(localUser)
					},
					JobCompleted: func(j *sched.Job) {
						_ = h.Sites[i].Lib.JobComplete(j.LocalUser, j.Start, j.End.Sub(j.Start), j.Procs)
					},
				},
				OnStart: onStart,
			}))
		default:
			return nil, fmt.Errorf("scenario: unknown RM %q", spec.RM)
		}
	}

	// Peer mesh, with fault injectors spliced into the faulted pull paths.
	// Each (site, peer) pair gets its own injector so concurrent pulls
	// within one exchange round cannot race for a shared PRNG.
	injectors := map[[2]int]*faultinject.Injector{}
	for _, f := range spec.Faults {
		key := [2]int{f.Site, f.Peer}
		if injectors[key] == nil {
			seed := spec.Seed ^ int64(f.Site*131+f.Peer*31+7)
			injectors[key] = faultinject.New(kernel.Clock(), seed)
		}
	}
	windows := map[[2]int][]faultinject.Window{}
	for _, f := range spec.Faults {
		windows[[2]int{f.Site, f.Peer}] = append(windows[[2]int{f.Site, f.Peer}], faultinject.Window{
			From:  Start.Add(f.From),
			Until: Start.Add(f.Until),
			Kind:  f.Kind,
			Rate:  f.Rate,
		})
	}
	for key, inj := range injectors {
		inj.SetWindows(windows[key]...)
	}
	h.peers = make([][]uss.Peer, spec.Sites)
	for i := 0; i < spec.Sites; i++ {
		for j := 0; j < spec.Sites; j++ {
			if i == j {
				continue
			}
			var peer uss.Peer = sitePeer{h: h, j: j}
			if inj := injectors[[2]int{i, j}]; inj != nil {
				peer = &testbed.FaultyPeer{Peer: peer, Inj: inj}
			}
			h.peers[i] = append(h.peers[i], peer)
			h.Sites[i].ConnectPeer(peer)
		}
	}

	// Churn and share edits: policy changes distributed through every PDS,
	// followed by an immediate refresh + cache flush (the administrator
	// "apply now" path).
	for _, u := range spec.Users {
		if u.JoinAt <= 0 {
			continue
		}
		u := u
		kernel.At(Start.Add(u.JoinAt), func(time.Time) {
			next := h.pol.Clone()
			if u.Project != "" {
				if _, err := next.Lookup(u.Project); err != nil {
					// First member of the project: create the group node.
					if _, err := next.Add("", u.Project, u.Share); err != nil {
						h.addViolation("harness", "join %s: %v", u.Name, err)
						return
					}
				}
			}
			if _, err := next.Add(u.Project, u.Name, u.Share); err != nil {
				h.addViolation("harness", "join %s: %v", u.Name, err)
				return
			}
			h.applyPolicy(next)
		})
	}
	for _, e := range spec.Edits {
		e := e
		kernel.At(Start.Add(e.At), func(time.Time) {
			next := h.pol.Clone()
			n, err := next.Lookup(e.Path)
			if err != nil {
				h.addViolation("harness", "edit %s: %v", e.Path, err)
				return
			}
			n.Share = e.NewShare
			h.applyPolicy(next)
		})
	}

	// Sabotage (tests only): corrupt the pipeline on purpose so the
	// checkers' ability to detect — and to replay bit-identically — is
	// itself tested.
	switch spec.Sabotage {
	case SabotagePhantomUsage:
		kernel.At(Start.Add(spec.Duration/2), func(now time.Time) {
			h.Sites[0].USS.ReportJob("phantom", now.Add(-10*time.Minute), 10*time.Minute, 4)
		})
	case SabotageDropCompletion:
		kernel.At(Start.Add(spec.Duration/2), func(time.Time) { h.dropArmed = true })
	}

	// Crash-and-restart events, plus periodic WAL compaction for the sites
	// that carry a durable log (so some restarts recover from snapshot +
	// tail and others from a pure WAL replay, depending on timing).
	for i := range h.durables {
		if h.durables[i] == nil {
			continue
		}
		i := i
		period := spec.Duration / 4
		scheduleEvery(kernel, Start.Add(period), period,
			func(time.Time) { _ = h.Sites[i].SnapshotDurable() }, done)
	}
	for _, r := range spec.Restarts {
		r := r
		kernel.At(Start.Add(r.At), func(now time.Time) { h.restartSite(r.Site, now) })
	}

	// Periodic machinery: per-site skewed exchange, refresh, RM passes,
	// invariant checks. The exchange closures index h.Sites at tick time so
	// they follow a site across restarts.
	for i := range h.Sites {
		i := i
		scheduleEvery(kernel, Start.Add(spec.ExchangeSkew[i]).Add(spec.ExchangeInterval), spec.ExchangeInterval,
			func(time.Time) { _ = h.Sites[i].Exchange() }, done)
	}
	kernel.Every(spec.RefreshInterval, func(time.Time) {
		for _, s := range h.Sites {
			_ = s.Refresh()
		}
	}, done)
	kernel.Every(spec.ReprioInterval, func(now time.Time) {
		for _, rm := range h.RMs {
			rm.Schedule(now)
		}
	}, done)

	checkers := opts.Checkers
	if checkers == nil {
		checkers = DefaultCheckers()
	}
	runCheckers := func(now time.Time) {
		for _, c := range checkers {
			for _, v := range c.Check(h, now) {
				h.violations = append(h.violations, v)
				fmt.Fprintf(h.digest, "V|%s\n", v.String())
			}
		}
	}
	kernel.Every(spec.CheckInterval, func(now time.Time) { runCheckers(now) }, done)

	// Workload: pre-generated jobs dispatched stochastically across sites,
	// like the paper's submission host.
	tr := &trace.Trace{}
	for _, js := range spec.Jobs {
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID:       js.ID,
			User:     js.User,
			Submit:   Start.Add(js.SubmitOffset),
			Duration: js.Duration,
			Procs:    js.Procs,
		})
	}
	tr.Sort()
	targets := make([]grid.Target, spec.Sites)
	for i := range targets {
		prefix := localPrefix(i)
		targets[i] = grid.Target{
			Name:    h.Sites[i].Name,
			RM:      h.RMs[i],
			MapUser: func(g string) string { return prefix + g },
		}
	}
	host, err := grid.NewSubmitHost(kernel, targets, grid.NewStochastic(spec.Seed+1))
	if err != nil {
		return nil, err
	}
	host.LoadTrace(tr)

	// Main loop: step events one at a time so the budget and fail-fast
	// semantics are exact, then drain the queues past the end of the trace
	// (the no-starvation invariant: every submitted job eventually runs).
	budgetLeft := func() bool { return opts.MaxEvents <= 0 || h.events < opts.MaxEvents }
	stop := func() bool { return opts.FailFast && len(h.violations) > 0 }

	for budgetLeft() && !stop() {
		at, ok := kernel.NextAt()
		if !ok || at.After(end) {
			break
		}
		h.step()
	}

	truncated := !budgetLeft()
	if !truncated && !stop() {
		// Advance the clock to the nominal end (no events remain before it).
		kernel.Run(end)
		h.drain(end, budgetLeft, stop)
	}

	// Final checks at wherever the run stopped (skipped when fail-fast
	// already recorded the terminating violation — re-checking would only
	// duplicate it).
	if !stop() {
		runCheckers(kernel.Now())
	}

	res := &Result{
		Spec:       spec,
		Events:     h.events,
		Submitted:  host.Submitted(),
		Completed:  h.completed,
		Violations: h.violations,
		Spans:      h.Spans,
	}
	for _, rm := range h.RMs {
		res.QueuedAtEnd += rm.QueueLen()
	}
	if len(res.Violations) > 0 {
		res.TraceDump = span.FormatTail(h.Spans, 40)
	}
	h.finishFingerprint(res)
	return res, nil
}

// openLog opens (or reopens, after a kill) site i's durable log.
func (h *Harness) openLog(i int) (*durability.Log, error) {
	return durability.Open(durability.Options{
		Dir:  h.dataDirs[i],
		Sync: durability.SyncNone,
		// Metrics are diagnostic here; a private registry per open keeps
		// repeated runs in one process from sharing instrument state.
		Metrics: telemetry.NewRegistry(),
		Spans:   h.Spans,
	})
}

// buildSite assembles site i's full Aequus service stack. Called once per
// site at run start and again by every restart event; a rebuilt site boots
// from the never-edited initial policy and recovers subsequent share edits
// from the WAL's MutPolicy records.
func (h *Harness) buildSite(i int) (*core.Site, error) {
	prefix := localPrefix(i)
	return core.NewSite(core.SiteConfig{
		Name:        fmt.Sprintf("site%02d", i),
		Policy:      h.initialPol,
		Clock:       h.Kernel.Clock(),
		BinWidth:    h.Spec.BinWidth,
		Decay:       h.Decay,
		Contribute:  true,
		UseGlobal:   true,
		Fairshare:   fairshare.Config{DistanceWeight: h.Spec.DistanceWeight, Resolution: 10000},
		UMSCacheTTL: h.Spec.RefreshInterval,
		FCSCacheTTL: h.Spec.RefreshInterval,
		// Synchronous refresh keeps every recomputation on the event
		// thread — asynchronous stale-while-revalidate would make runs
		// nondeterministic.
		FCSSynchronousRefresh: true,
		LibCacheTTL:           h.Spec.LibTTL,
		ResolveEndpoint: irs.EndpointFunc(func(_, local string) (string, error) {
			if !strings.HasPrefix(local, prefix) {
				return "", fmt.Errorf("scenario: %q does not follow the %q mapping", local, prefix)
			}
			return strings.TrimPrefix(local, prefix), nil
		}),
		Spans:   h.Spans,
		Durable: h.durables[i],
	})
}

// restartSite kills site i's service stack and rebuilds it from the durable
// log, then proves recovery bit-exact against the pre-kill twin: local
// records, remote mirrors, peer watermarks and the published fairshare
// priorities must all match down to the float bits. (Restarts are only
// scheduled under NoDecay, where that identity is exact — an exponential
// decay tracker rebuilt from records differs from an evolved one in the
// last ulps.)
func (h *Harness) restartSite(i int, now time.Time) {
	fmt.Fprintf(h.digest, "R|%d|%d\n", i, now.Unix())
	d := h.durables[i]
	if d == nil {
		h.addViolation("restart-recovery", "site %d has no durable log", i)
		return
	}
	old := h.Sites[i]
	// Publish the doomed site's priorities from this instant's usage, so
	// both twins compute their tables from the same cut at the same
	// simulated time.
	_ = old.Refresh()
	wantLocal := old.USS.LocalRecords()
	wantRemote := old.USS.RemoteRecords()
	wantWM := old.USS.Watermarks()
	wantTable, wantTableErr := old.FCS.Table()

	// Process death. Closing the handle loses nothing: the scenario's
	// failure model is a dead process, not a dead machine, so writes that
	// reached the page cache survive.
	if err := d.Close(); err != nil {
		h.addViolation("restart-recovery", "site %d: close log: %v", i, err)
		return
	}
	nd, err := h.openLog(i)
	if err != nil {
		h.addViolation("restart-recovery", "site %d: reopen log: %v", i, err)
		return
	}
	h.durables[i] = nd
	site, err := h.buildSite(i)
	if err != nil {
		h.addViolation("restart-recovery", "site %d: rebuild: %v", i, err)
		return
	}
	// Expose the new stack and its peer mesh before replay — peers pulling
	// mid-recovery would be served the frozen snapshot image through it.
	h.Sites[i] = site
	for _, p := range h.peers[i] {
		site.ConnectPeer(p)
	}
	if err := site.Recover(); err != nil {
		h.addViolation("restart-recovery", "site %d: replay: %v", i, err)
		return
	}
	_ = site.Refresh()
	nd.MarkReady()

	h.compareRecords(i, "local", wantLocal, site.USS.LocalRecords())
	gotRemote := site.USS.RemoteRecords()
	if len(gotRemote) != len(wantRemote) {
		h.addViolation("restart-recovery", "site %d: recovered %d remote mirrors, want %d",
			i, len(gotRemote), len(wantRemote))
	} else {
		for peerSite, want := range wantRemote {
			h.compareRecords(i, "remote/"+peerSite, want, gotRemote[peerSite])
		}
	}
	gotWM := site.USS.Watermarks()
	for peerSite, want := range wantWM {
		if !gotWM[peerSite].Equal(want) {
			h.addViolation("restart-recovery", "site %d: watermark[%s] recovered as %s, want %s",
				i, peerSite, gotWM[peerSite], want)
		}
	}

	gotTable, gotTableErr := site.FCS.Table()
	switch {
	case (wantTableErr == nil) != (gotTableErr == nil):
		h.addViolation("restart-recovery", "site %d: table availability diverged: %v vs %v",
			i, wantTableErr, gotTableErr)
	case wantTableErr == nil:
		// The incremental-vs-rebuilt index orders may differ; priorities are
		// compared per user, bit for bit.
		want := map[string]float64{}
		for _, e := range wantTable.Entries {
			want[e.User] = e.Value
		}
		if len(gotTable.Entries) != len(want) {
			h.addViolation("restart-recovery", "site %d: recovered table has %d users, want %d",
				i, len(gotTable.Entries), len(want))
			break
		}
		for _, e := range gotTable.Entries {
			w, ok := want[e.User]
			if !ok {
				h.addViolation("restart-recovery", "site %d: recovered table has unknown user %q", i, e.User)
				continue
			}
			if math.Float64bits(e.Value) != math.Float64bits(w) {
				h.addViolation("restart-recovery", "site %d: priority[%s] recovered as %x, want %x",
					i, e.User, math.Float64bits(e.Value), math.Float64bits(w))
			}
		}
	}
	if err := site.FCS.VerifySnapshot(); err != nil {
		h.addViolation("restart-recovery", "site %d: post-recovery snapshot twin: %v", i, err)
	}
}

// compareRecords asserts two canonical record streams are bit-identical,
// recording at most one violation per stream.
func (h *Harness) compareRecords(i int, what string, want, got []usage.Record) {
	if len(got) != len(want) {
		h.addViolation("restart-recovery", "site %d: %s recovered %d records, want %d",
			i, what, len(got), len(want))
		return
	}
	for k := range want {
		w, g := want[k], got[k]
		if w.User != g.User || !w.IntervalStart.Equal(g.IntervalStart) ||
			math.Float64bits(w.CoreSeconds) != math.Float64bits(g.CoreSeconds) {
			h.addViolation("restart-recovery", "site %d: %s record %d recovered as %+v, want %+v",
				i, what, k, g, w)
			return
		}
	}
}

// step executes one kernel event with clock-sanity accounting.
func (h *Harness) step() {
	before := h.Kernel.Now()
	h.Kernel.Step()
	h.events++
	now := h.Kernel.Now()
	if now.Before(before) || now.Before(h.lastNow) {
		h.addViolation("clock-sanity", "clock moved backwards: %s -> %s", h.lastNow, now)
	}
	h.lastNow = now
}

// drain runs the system past the trace end until every queue is empty and
// every running job completed, bounded by one extra Duration. Leftover
// pending jobs after that are a starvation violation.
func (h *Harness) drain(end time.Time, budgetLeft, stop func() bool) {
	deadline := end.Add(h.Spec.Duration)
	for budgetLeft() && !stop() {
		queued := 0
		running := 0
		for i, rm := range h.RMs {
			queued += rm.QueueLen()
			running += h.Clusters[i].RunningCount()
		}
		if queued == 0 && running == 0 {
			return
		}
		now := h.Kernel.Now()
		for _, rm := range h.RMs {
			rm.Schedule(now)
		}
		at, ok := h.Kernel.NextAt()
		if !ok || at.After(deadline) {
			break
		}
		h.step()
	}
	if !budgetLeft() || stop() {
		return
	}
	queued := 0
	for _, rm := range h.RMs {
		queued += rm.QueueLen()
	}
	if queued > 0 {
		h.addViolation("no-starvation",
			"%d jobs still pending after a full extra run duration of drain", queued)
	}
}

// applyPolicy distributes a new policy tree to every site and forces the
// pre-calculation pipeline to pick it up immediately.
func (h *Harness) applyPolicy(next *policy.Tree) {
	h.pol = next
	for _, s := range h.Sites {
		if err := s.PDS.SetPolicy(next); err != nil {
			h.addViolation("harness", "set policy: %v", err)
			return
		}
		_ = s.Refresh()
		s.Lib.FlushCaches()
	}
}

// observeStart records a dispatch and checks start-time ordering sanity.
// It runs inside the scheduler's start path on the event thread.
func (h *Harness) observeStart(site int, j *sched.Job, priority float64, pass uint64) {
	now := h.Kernel.Now()
	if j.Start.Before(j.Submit) {
		h.addViolation("clock-sanity", "job %d started %s before its submission %s",
			j.ID, j.Start, j.Submit)
	}
	if !j.Start.Equal(now) {
		h.addViolation("clock-sanity", "job %d start %s != event time %s", j.ID, j.Start, now)
	}
	d := Dispatch{
		Site: site, Pass: pass, Priority: priority,
		JobID: j.ID, User: j.GridUser, Procs: j.Procs,
		Submit: j.Submit, Start: j.Start,
	}
	h.dispatches = append(h.dispatches, d)
	fmt.Fprintf(h.digest, "D|%d|%d|%d|%s|%.12g|%d\n",
		site, pass, j.ID, j.GridUser, priority, j.Start.Unix())
}

// observeCompletion feeds the independent ledger and checks completion
// ordering sanity.
func (h *Harness) observeCompletion(site int, j *sched.Job) {
	now := h.Kernel.Now()
	if j.End.Before(j.Start) {
		h.addViolation("clock-sanity", "job %d ended %s before it started %s", j.ID, j.End, j.Start)
	}
	if !j.End.Equal(now) {
		h.addViolation("clock-sanity", "job %d end %s != event time %s", j.ID, j.End, now)
	}
	h.completed++
	fmt.Fprintf(h.digest, "C|%d|%d|%d\n", site, j.ID, j.End.Unix())
	if h.dropArmed {
		// SabotageDropCompletion: lose exactly one record.
		h.dropArmed = false
		return
	}
	h.Ledger.Add(LedgerRecord{
		Site: site, User: j.GridUser, Start: j.Start, Dur: j.End.Sub(j.Start), Procs: j.Procs,
	})
}

// finishFingerprint folds the final state into the digest.
func (h *Harness) finishFingerprint(res *Result) {
	usageTotals := h.CumulativeUsage()
	users := make([]string, 0, len(usageTotals))
	for u := range usageTotals {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		fmt.Fprintf(h.digest, "U|%s|%.9e\n", u, usageTotals[u])
	}
	fmt.Fprintf(h.digest, "E|%d|%d|%d\n", res.Events, res.Submitted, res.Completed)
	res.Fingerprint = fmt.Sprintf("%016x", h.digest.Sum64())
}

// scheduleEvery schedules fn at `first` and then every `period`, stopping
// once stop reports true — kernel.Every with an explicit first occurrence,
// which is what per-site exchange skew needs.
func scheduleEvery(k *eventsim.Kernel, first time.Time, period time.Duration, fn eventsim.Event, stop func() bool) {
	var tick eventsim.Event
	tick = func(now time.Time) {
		if stop != nil && stop() {
			return
		}
		fn(now)
		k.After(period, tick)
	}
	k.At(first, tick)
}
