package durability

// WAL segment file format. A segment starts with an 8-byte magic and holds
// a sequence of length-prefixed, CRC-protected frames:
//
//	"AEQWAL01" [u32le len][u32le crc32(IEEE, payload)][payload] ...
//
// The only legal damage is a torn tail on the LAST segment — the frame a
// crash interrupted mid-write. Recovery truncates the file back to the last
// complete record and carries on. Everything else is loud: a complete frame
// whose CRC does not match its payload, a torn frame in a non-final segment
// (segments are only rotated after the next one exists, so a short middle
// segment means real corruption), or a bad magic.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	walMagic = "AEQWAL01"
	// frameHeaderSize is the per-record overhead: u32 length + u32 CRC.
	frameHeaderSize = 8
)

// segmentName returns the file name of the WAL segment with the given index.
func segmentName(idx uint64) string {
	return fmt.Sprintf("wal-%08d.log", idx)
}

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(mid) != 8 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// appendFrame appends one framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// createSegment creates a fresh segment file with the magic written and the
// handle positioned for appending.
func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// CorruptionError reports a CRC mismatch or structural damage at a specific
// byte offset of a WAL segment — unrecoverable, and deliberately loud.
type CorruptionError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("durability: corrupt WAL segment %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// scanSegment reads every complete frame of the segment at path, invoking fn
// with each payload in order. isLast marks the newest segment, where a torn
// (incomplete) tail frame is legal crash damage: scanSegment reports the
// offset to truncate back to via keep. For complete-but-CRC-mismatched
// frames it always returns a *CorruptionError naming the offset, and for a
// torn frame in a non-final segment likewise.
func scanSegment(path string, isLast bool, fn func(payload []byte) error) (keep int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, &CorruptionError{Path: path, Offset: 0, Reason: "bad segment magic"}
	}
	off := int64(len(walMagic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, nil
		}
		if len(rest) < frameHeaderSize {
			if isLast {
				return off, nil // torn header at tail: truncate here
			}
			return 0, &CorruptionError{Path: path, Offset: off, Reason: "torn frame header in non-final segment"}
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if uint64(n) > uint64(len(rest)-frameHeaderSize) {
			if isLast {
				return off, nil // torn payload at tail: truncate here
			}
			return 0, &CorruptionError{Path: path, Offset: off, Reason: "torn frame payload in non-final segment"}
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return 0, &CorruptionError{Path: path, Offset: off, Reason: "frame CRC mismatch"}
		}
		if err := fn(payload); err != nil {
			return 0, fmt.Errorf("durability: %s at offset %d: %w", path, off, err)
		}
		off += frameHeaderSize + int64(n)
	}
}

// listSegments returns the indices of all WAL segments in dir, sorted
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseSegmentName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// removeStale deletes leftover temporary files (interrupted snapshot
// writes) from dir.
func removeStale(dir string) error {
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return err
	}
	for _, t := range tmps {
		if err := os.Remove(t); err != nil {
			return err
		}
	}
	return nil
}
