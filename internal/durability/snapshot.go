package durability

// Snapshot file format. A snapshot is a compacted image of a site's entire
// durable usage state — local histogram bins, per-peer remote bins,
// exchange watermarks, and the policy JSON — captured at a WAL segment
// boundary. The file is named with the index of the first segment NOT
// covered by it: recovery loads the newest snapshot snap-M and replays
// segments >= M.
//
//	"AEQSNAP1" [payload] [u32le crc32(IEEE, payload)]
//
// payload:
//	[version=1]
//	[varint binWidth ns]
//	[uvarint len(policy)][policy JSON]
//	[uvarint len(site)][site]          own site name
//	[record block]                     local bins
//	[uvarint nPeers]{[string peer][record block]}
//	[uvarint nWatermarks]{[string peer][varint unix nanos]}
//
// record block: [uvarint n]{[string user][varint start unix secs][u64le float bits]}
//
// Bin values are stored as raw float64 bits, so a restore is bitwise exact.
// Snapshots are written to a .tmp file, fsynced, then renamed — a crash
// mid-write leaves only the previous snapshot visible.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/usage"
)

const (
	snapMagic   = "AEQSNAP1"
	snapVersion = 1
)

// SnapshotState is the decoded durable image of a site's usage state.
type SnapshotState struct {
	// BinWidth is the histogram interval width the records were binned at.
	BinWidth time.Duration
	// Policy is the policy-tree JSON at capture time (nil when the site
	// had no durable policy edit yet).
	Policy []byte
	// Site is the owning site's name (stamped on Local records).
	Site string
	// Local holds the site's own histogram bins, sorted by user then
	// interval start.
	Local []usage.Record
	// Remote holds each peer's mirrored bins, keyed by peer site name.
	Remote map[string][]usage.Record
	// Watermark holds the newest interval start pulled from each peer.
	Watermark map[string]time.Time
}

func snapshotName(idx uint64) string {
	return fmt.Sprintf("snap-%08d.snap", idx)
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(mid) != 8 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func appendRecordBlock(dst []byte, recs []usage.Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = appendSnapString(dst, r.User)
		dst = binary.AppendVarint(dst, r.IntervalStart.Unix())
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.CoreSeconds))
	}
	return dst
}

func readRecordBlock(b []byte, site string) ([]usage.Record, []byte, error) {
	n, b, err := readSnapUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) { // each record is >= 10 bytes
		return nil, nil, fmt.Errorf("record block claims %d records in %d bytes", n, len(b))
	}
	recs := make([]usage.Record, n)
	for i := range recs {
		var user string
		if user, b, err = readSnapString(b); err != nil {
			return nil, nil, err
		}
		var start int64
		if start, b, err = readSnapVarint(b); err != nil {
			return nil, nil, err
		}
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("truncated record value")
		}
		recs[i] = usage.Record{
			User:          user,
			Site:          site,
			IntervalStart: time.Unix(start, 0).UTC(),
			CoreSeconds:   math.Float64frombits(binary.LittleEndian.Uint64(b)),
		}
		b = b[8:]
	}
	return recs, b, nil
}

// encodeSnapshot serializes state, magic and CRC trailer included.
func encodeSnapshot(state *SnapshotState) []byte {
	payload := []byte{snapVersion}
	payload = binary.AppendVarint(payload, int64(state.BinWidth))
	payload = appendSnapString(payload, string(state.Policy))
	payload = appendSnapString(payload, state.Site)
	payload = appendRecordBlock(payload, state.Local)

	peers := make([]string, 0, len(state.Remote))
	for p := range state.Remote {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	payload = binary.AppendUvarint(payload, uint64(len(peers)))
	for _, p := range peers {
		payload = appendSnapString(payload, p)
		payload = appendRecordBlock(payload, state.Remote[p])
	}

	wms := make([]string, 0, len(state.Watermark))
	for p := range state.Watermark {
		wms = append(wms, p)
	}
	sort.Strings(wms)
	payload = binary.AppendUvarint(payload, uint64(len(wms)))
	for _, p := range wms {
		payload = appendSnapString(payload, p)
		payload = binary.AppendVarint(payload, state.Watermark[p].UnixNano())
	}

	out := make([]byte, 0, len(snapMagic)+len(payload)+4)
	out = append(out, snapMagic...)
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

// decodeSnapshot parses a snapshot file image produced by encodeSnapshot.
func decodeSnapshot(data []byte) (*SnapshotState, error) {
	if len(data) < len(snapMagic)+1+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("bad snapshot magic")
	}
	payload := data[len(snapMagic) : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("snapshot CRC mismatch")
	}
	if payload[0] != snapVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d", payload[0])
	}
	b := payload[1:]
	st := &SnapshotState{}
	var err error
	var width int64
	if width, b, err = readSnapVarint(b); err != nil {
		return nil, err
	}
	st.BinWidth = time.Duration(width)
	var pol string
	if pol, b, err = readSnapString(b); err != nil {
		return nil, err
	}
	if pol != "" {
		st.Policy = []byte(pol)
	}
	if st.Site, b, err = readSnapString(b); err != nil {
		return nil, err
	}
	if st.Local, b, err = readRecordBlock(b, st.Site); err != nil {
		return nil, err
	}
	nPeers, b, err := readSnapUvarint(b)
	if err != nil {
		return nil, err
	}
	st.Remote = make(map[string][]usage.Record, nPeers)
	for i := uint64(0); i < nPeers; i++ {
		var peer string
		if peer, b, err = readSnapString(b); err != nil {
			return nil, err
		}
		if st.Remote[peer], b, err = readRecordBlock(b, peer); err != nil {
			return nil, err
		}
	}
	nWM, b, err := readSnapUvarint(b)
	if err != nil {
		return nil, err
	}
	st.Watermark = make(map[string]time.Time, nWM)
	for i := uint64(0); i < nWM; i++ {
		var peer string
		if peer, b, err = readSnapString(b); err != nil {
			return nil, err
		}
		var ns int64
		if ns, b, err = readSnapVarint(b); err != nil {
			return nil, err
		}
		st.Watermark[peer] = time.Unix(0, ns).UTC()
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after snapshot payload", len(b))
	}
	return st, nil
}

// writeSnapshotFile atomically publishes the encoded snapshot for segment
// index idx: write to a .tmp sibling, fsync, rename, fsync the directory.
func writeSnapshotFile(dir string, idx uint64, data []byte) (string, error) {
	final := filepath.Join(dir, snapshotName(idx))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return final, nil
}

// loadNewestSnapshot finds the highest-indexed snapshot in dir and decodes
// it. A corrupt newest snapshot is a loud error, not a silent fallback — it
// means durable state the operator believed existed cannot be trusted.
// Returns (nil, 0, nil) when no snapshot exists.
func loadNewestSnapshot(dir string) (*SnapshotState, uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	best := uint64(0)
	found := false
	for _, e := range ents {
		if idx, ok := parseSnapshotName(e.Name()); ok && (!found || idx > best) {
			best, found = idx, true
		}
	}
	if !found {
		return nil, 0, nil
	}
	path := filepath.Join(dir, snapshotName(best))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	st, err := decodeSnapshot(data)
	if err != nil {
		return nil, 0, fmt.Errorf("durability: snapshot %s: %w", path, err)
	}
	return st, best, nil
}

func appendSnapString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readSnapString(b []byte) (string, []byte, error) {
	n, rest, err := readSnapUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("truncated snapshot string (%d of %d bytes)", len(rest), n)
	}
	return string(rest[:n]), rest[n:], nil
}

func readSnapUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated snapshot varint")
	}
	return v, b[n:], nil
}

func readSnapVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated snapshot varint")
	}
	return v, b[n:], nil
}
