// Package durability makes a site's usage state survive process death: a
// write-ahead log of usage mutations with group commit at batch-ingest
// boundaries, periodic compacted snapshots of the striped histograms, and
// crash-recovery replay that reproduces the pre-crash state bitwise.
//
// The log is pure WAL machinery — it owns no histograms. Callers pass an
// apply closure to Commit; the log serializes append → fsync → apply under
// one mutex, which pins the on-disk mutation order to the in-memory apply
// order. That identity is what makes recovery bit-exact: float addition is
// not associative, so replaying the same mutations in the same order is the
// only way recovered totals match a never-crashed twin down to the last
// ulp.
//
// Lifecycle: Open loads the newest snapshot and scans the WAL tail into a
// pending list (the log starts in the recovering state; commits block until
// replay finishes). Replay applies the pending mutations in order through a
// caller-supplied applier and unblocks commits. MarkReady is flipped by the
// owner after the first post-replay fairshare publish — /readyz serves
// "recovering" until then. While recovering, FrozenRecordsSince serves the
// snapshot's local records lock-free so peers pulling mid-replay see the
// pre-crash watermark, never a half-replayed histogram.
package durability

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
)

// SyncPolicy controls when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs once per committed record — one fsync per batch,
	// since a batch ingest is a single group-committed record.
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs: writes reach the OS page cache only. Survives
	// process death (the scenario harness's restart model) but not power
	// loss.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("durability: unknown sync policy %q (want always|none)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if missing.
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Metrics receives WAL/snapshot/replay instrumentation (default
	// registry when nil).
	Metrics *telemetry.Registry
	// Spans, when set, records replay and snapshot spans.
	Spans *span.Recorder
}

// Stats is a point-in-time dump of the log's I/O counters.
type Stats struct {
	// Fsyncs counts WAL fsync calls — one per committed record under
	// SyncAlways, so a batch ingest moves it by exactly one.
	Fsyncs int64
	// AppendedBytes counts framed bytes appended to WAL segments.
	AppendedBytes int64
	// Records counts committed mutation records.
	Records int64
	// Snapshots counts completed snapshot writes.
	Snapshots int64
}

// frozenState is the immutable pre-crash image served during replay.
type frozenState struct {
	recs []usage.Record // sorted by user then interval start
}

// Log is a site's durable usage-state log. Safe for concurrent use.
type Log struct {
	dir    string
	sync   SyncPolicy
	spans  *span.Recorder
	closed bool

	mu   sync.Mutex // serializes append+fsync+apply; held across Replay
	cond *sync.Cond // wakes commits blocked on the recovering state

	seg      *os.File
	segIndex uint64

	// recoveringLk mirrors recoveringA under mu; the atomic exists so
	// serving paths can check without touching the commit lock.
	recoveringLk bool
	recoveringA  atomic.Bool
	replayingA   atomic.Bool
	readyA       atomic.Bool

	pending   []*usage.Mutation // WAL tail awaiting Replay
	recovered *SnapshotState    // newest snapshot, nil once replayed
	frozen    atomic.Pointer[frozenState]

	replayDone  atomic.Int64
	replayTotal int64

	snapMu sync.Mutex // serializes whole Snapshot calls (write phase is off d.mu)

	// reusable frame buffer; guarded by mu.
	buf []byte

	fsyncs    atomic.Int64
	appended  atomic.Int64
	records   atomic.Int64
	snapshots atomic.Int64

	mFsyncSec  *telemetry.Histogram
	mBytes     *telemetry.Counter
	mRecords   *telemetry.Counter
	mSnapSec   *telemetry.Histogram
	mSnaps     *telemetry.Counter
	mReplayed  *telemetry.Counter
	mReplayGap *telemetry.Gauge
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("durability: log closed")

// errRecovering rejects snapshots taken before replay finished.
var errRecovering = errors.New("durability: log is recovering; replay before snapshotting")

// Open loads the durable state in dir: the newest snapshot plus the WAL
// tail past it. The log comes up in the recovering state — the caller must
// adopt Recovered() into its in-memory state, then drain the tail with
// Replay before any Commit proceeds. A torn final record (crash mid-append)
// is truncated away silently; CRC mismatches and structural damage anywhere
// else fail loudly with the file and offset.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("durability: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := removeStale(opts.Dir); err != nil {
		return nil, err
	}

	state, snapIdx, err := loadNewestSnapshot(opts.Dir)
	if err != nil {
		return nil, err
	}

	all, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, idx := range all {
		if idx >= snapIdx {
			segs = append(segs, idx)
		}
	}
	if state != nil && (len(segs) == 0 || segs[0] != snapIdx) {
		return nil, fmt.Errorf("durability: snapshot %s exists but WAL segment %s is missing",
			snapshotName(snapIdx), segmentName(snapIdx))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, fmt.Errorf("durability: WAL segment gap between %s and %s",
				segmentName(segs[i-1]), segmentName(segs[i]))
		}
	}

	d := &Log{dir: opts.Dir, sync: opts.Sync, spans: opts.Spans, recovered: state}
	d.cond = sync.NewCond(&d.mu)
	d.registerMetrics(telemetry.OrDefault(opts.Metrics))

	if len(segs) == 0 {
		// Fresh directory (or snapshot-only import): start the segment
		// sequence at the snapshot boundary.
		d.segIndex = snapIdx
		path := filepath.Join(opts.Dir, segmentName(snapIdx))
		f, err := createSegment(path)
		if err != nil {
			return nil, err
		}
		if opts.Sync == SyncAlways {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
			syncDir(opts.Dir)
		}
		d.seg = f
	} else {
		for i, idx := range segs {
			isLast := i == len(segs)-1
			path := filepath.Join(opts.Dir, segmentName(idx))
			keep, err := scanSegment(path, isLast, func(payload []byte) error {
				m, err := usage.DecodeMutation(payload)
				if err != nil {
					return err
				}
				d.pending = append(d.pending, m)
				return nil
			})
			if err != nil {
				return nil, err
			}
			if !isLast {
				continue
			}
			if fi, err := os.Stat(path); err != nil {
				return nil, err
			} else if keep < fi.Size() {
				if err := os.Truncate(path, keep); err != nil {
					return nil, err
				}
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return nil, err
			}
			d.seg = f
			d.segIndex = idx
		}
	}

	d.recoveringLk = true
	d.recoveringA.Store(true)
	d.replayTotal = int64(len(d.pending))
	d.mReplayGap.Set(float64(d.replayTotal))
	fz := &frozenState{}
	if state != nil {
		fz.recs = state.Local
	}
	d.frozen.Store(fz)
	return d, nil
}

func (d *Log) registerMetrics(reg *telemetry.Registry) {
	d.mFsyncSec = reg.Histogram("aequus_durability_wal_fsync_seconds",
		"WAL fsync latency per committed record.",
		telemetry.ExpBuckets(0.00005, 2, 14))
	d.mBytes = reg.Counter("aequus_durability_wal_appended_bytes_total",
		"Framed bytes appended to WAL segments.")
	d.mRecords = reg.Counter("aequus_durability_wal_records_total",
		"Mutation records committed to the WAL.")
	d.mSnapSec = reg.Histogram("aequus_durability_snapshot_seconds",
		"Wall time to capture, serialize, and publish one snapshot.",
		telemetry.ExpBuckets(0.001, 2, 14))
	d.mSnaps = reg.Counter("aequus_durability_snapshots_total",
		"Completed snapshot writes.")
	d.mReplayed = reg.Counter("aequus_durability_replay_records_total",
		"WAL records applied during crash-recovery replay.")
	d.mReplayGap = reg.Gauge("aequus_durability_replay_pending_records",
		"WAL records still awaiting replay (0 once recovered).")
}

// Commit durably appends mut, then runs apply while still holding the
// commit lock — the WAL order and the in-memory apply order are the same
// total order. Under SyncAlways this is the group-commit point: one fsync
// per call, so a batch mutation costs one fsync regardless of its size.
// Commits issued while the log is still recovering block until Replay
// drains the tail.
func (d *Log) Commit(mut *usage.Mutation, apply func()) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.recoveringLk && !d.closed {
		d.cond.Wait()
	}
	if d.closed {
		return ErrClosed
	}
	// Encode straight into the reusable frame buffer — reserve the header,
	// append the payload in place, backfill length and CRC. One sizing pass
	// plus at most one allocation, instead of growth-doubling a multi-MB
	// batch payload twice (encode, then frame copy).
	if need := frameHeaderSize + mut.EncodedSize(); cap(d.buf) < need {
		d.buf = make([]byte, 0, need)
	}
	d.buf = append(d.buf[:0], make([]byte, frameHeaderSize)...)
	d.buf = mut.AppendBinary(d.buf)
	payload := d.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(d.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(d.buf[4:8], crc32.ChecksumIEEE(payload))
	if _, err := d.seg.Write(d.buf); err != nil {
		return fmt.Errorf("durability: WAL append: %w", err)
	}
	d.appended.Add(int64(len(d.buf)))
	d.records.Add(1)
	d.mBytes.Add(float64(len(d.buf)))
	d.mRecords.Inc()
	if d.sync == SyncAlways {
		t0 := time.Now()
		if err := d.seg.Sync(); err != nil {
			return fmt.Errorf("durability: WAL fsync: %w", err)
		}
		d.fsyncs.Add(1)
		d.mFsyncSec.Observe(time.Since(t0).Seconds())
	}
	if apply != nil {
		apply()
	}
	return nil
}

// Replay drains the recovered WAL tail through apply, in commit order, then
// unblocks commits. The commit lock is held for the whole replay, so no new
// mutation interleaves with the tail — interleaving would put the rebuilt
// state ahead of the WAL and break the next recovery. An apply error aborts
// replay loudly and leaves the log recovering (commits stay blocked).
// Replaying on an already-recovered log is a no-op.
func (d *Log) Replay(apply func(*usage.Mutation) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if !d.recoveringLk {
		return nil
	}
	_, sp := span.Start(span.EnsureRecorder(context.Background(), d.spans), "durability.replay")
	sp.SetAttrInt("records", d.replayTotal)
	d.replayingA.Store(true)
	defer d.replayingA.Store(false)
	for i, m := range d.pending {
		if err := apply(m); err != nil {
			err = fmt.Errorf("durability: replay record %d/%d: %w", i+1, len(d.pending), err)
			sp.SetErr(err)
			sp.End()
			return err
		}
		d.replayDone.Store(int64(i + 1))
		d.mReplayed.Inc()
		d.mReplayGap.Set(float64(d.replayTotal - int64(i+1)))
	}
	d.pending = nil
	d.recovered = nil
	d.recoveringLk = false
	d.recoveringA.Store(false)
	d.frozen.Store(nil)
	d.cond.Broadcast()
	sp.End()
	return nil
}

// MarkReady records that the owner finished its first post-replay fairshare
// publish — the point where /readyz may flip ready.
func (d *Log) MarkReady() { d.readyA.Store(true) }

// Recovering reports whether the WAL tail is still unapplied (before or
// during Replay).
func (d *Log) Recovering() bool { return d.recoveringA.Load() }

// Replaying reports whether Replay is actively applying the tail — used by
// mutation hooks to avoid re-committing a mutation that is itself being
// replayed.
func (d *Log) Replaying() bool { return d.replayingA.Load() }

// Ready reports whether MarkReady has been called.
func (d *Log) Ready() bool { return d.readyA.Load() }

// ReplayProgress returns how many of the recovered WAL-tail records have
// been applied.
func (d *Log) ReplayProgress() (done, total int64) {
	return d.replayDone.Load(), d.replayTotal
}

// Recovered returns the newest snapshot loaded by Open (nil when none
// existed or once Replay completed). The caller adopts it into in-memory
// state before calling Replay.
func (d *Log) Recovered() *SnapshotState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovered
}

// FrozenRecordsSince serves the pre-crash local records while the log is
// recovering, filtered like Histogram.RecordsSince. The second result is
// false once recovery has finished (callers fall through to the live
// histogram). Lock-free: replay can grind through a long tail while peers
// keep pulling the frozen image.
func (d *Log) FrozenRecordsSince(site string, t time.Time) ([]usage.Record, bool) {
	if !d.recoveringA.Load() {
		return nil, false
	}
	fz := d.frozen.Load()
	if fz == nil {
		// Raced with the end of Replay: the live state is now authoritative.
		return nil, false
	}
	var out []usage.Record
	for _, r := range fz.recs {
		if !r.IntervalStart.Before(t) {
			rec := r
			rec.Site = site
			out = append(out, rec)
		}
	}
	return out, true
}

// Snapshot rotates the WAL and publishes a compacted snapshot. capture runs
// with commits blocked — the cut is consistent with the new segment
// boundary — but it should read histograms stripe-at-a-time
// (Histogram.StripeRecords) so whole-histogram readers never stall behind
// it. Serialization, the file write, and pruning all happen off the commit
// lock. After the snapshot is durable, segments and snapshots it supersedes
// are pruned.
func (d *Log) Snapshot(capture func() (*SnapshotState, error)) error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	t0 := time.Now()
	_, sp := span.Start(span.EnsureRecorder(context.Background(), d.spans), "durability.snapshot")
	defer sp.End()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		sp.SetErr(ErrClosed)
		return ErrClosed
	}
	if d.recoveringLk {
		d.mu.Unlock()
		sp.SetErr(errRecovering)
		return errRecovering
	}
	// Rotate: the snapshot will cover everything up to and including the
	// current segment, so the new segment starts the uncovered tail.
	if d.sync == SyncAlways {
		if err := d.seg.Sync(); err != nil {
			d.mu.Unlock()
			sp.SetErr(err)
			return fmt.Errorf("durability: pre-rotate fsync: %w", err)
		}
	}
	if err := d.seg.Close(); err != nil {
		d.mu.Unlock()
		sp.SetErr(err)
		return fmt.Errorf("durability: pre-rotate close: %w", err)
	}
	newIdx := d.segIndex + 1
	f, err := createSegment(filepath.Join(d.dir, segmentName(newIdx)))
	if err == nil && d.sync == SyncAlways {
		if serr := f.Sync(); serr != nil {
			f.Close()
			err = serr
		} else {
			syncDir(d.dir)
		}
	}
	if err != nil {
		// The old segment is closed; the log cannot accept commits safely.
		d.closed = true
		d.cond.Broadcast()
		d.mu.Unlock()
		sp.SetErr(err)
		return fmt.Errorf("durability: WAL rotate: %w", err)
	}
	d.seg = f
	d.segIndex = newIdx
	state, err := capture()
	d.mu.Unlock()
	if err != nil {
		// Rotation already happened; an extra segment boundary is harmless.
		sp.SetErr(err)
		return fmt.Errorf("durability: snapshot capture: %w", err)
	}

	data := encodeSnapshot(state)
	if _, err := writeSnapshotFile(d.dir, newIdx, data); err != nil {
		sp.SetErr(err)
		return fmt.Errorf("durability: snapshot write: %w", err)
	}
	d.prune(newIdx)
	d.snapshots.Add(1)
	d.mSnaps.Inc()
	d.mSnapSec.Observe(time.Since(t0).Seconds())
	sp.SetAttrInt("bytes", int64(len(data)))
	sp.SetAttrInt("segment", int64(newIdx))
	return nil
}

// prune removes WAL segments and snapshots superseded by the snapshot at
// keepIdx. Best effort — leftovers are re-pruned on the next snapshot, and
// Open ignores segments below the newest snapshot's index.
func (d *Log) prune(keepIdx uint64) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if idx, ok := parseSegmentName(e.Name()); ok && idx < keepIdx {
			_ = os.Remove(filepath.Join(d.dir, e.Name()))
		}
		if idx, ok := parseSnapshotName(e.Name()); ok && idx < keepIdx {
			_ = os.Remove(filepath.Join(d.dir, e.Name()))
		}
	}
}

// Stats returns the I/O counters.
func (d *Log) Stats() Stats {
	return Stats{
		Fsyncs:        d.fsyncs.Load(),
		AppendedBytes: d.appended.Load(),
		Records:       d.records.Load(),
		Snapshots:     d.snapshots.Load(),
	}
}

// Dir returns the data directory.
func (d *Log) Dir() string { return d.dir }

// Close flushes and closes the active segment. Blocked commits are woken
// and fail with ErrClosed.
func (d *Log) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.cond.Broadcast()
	var err error
	if d.sync == SyncAlways {
		err = d.seg.Sync()
	}
	if cerr := d.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable. Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
}
