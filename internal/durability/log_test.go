package durability

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/usage"
)

func randState(rng *rand.Rand) *SnapshotState {
	mkRecs := func(site string, n int) []usage.Record {
		recs := make([]usage.Record, n)
		for i := range recs {
			recs[i] = usage.Record{
				User:          "u" + string(rune('a'+rng.Intn(26))),
				Site:          site,
				IntervalStart: time.Unix(int64(rng.Intn(1<<20))*3600, 0).UTC(),
				CoreSeconds:   rng.NormFloat64() * 1e6,
			}
		}
		return recs
	}
	st := &SnapshotState{
		BinWidth: time.Duration(1+rng.Intn(48)) * time.Hour,
		Site:     "self",
		Local:    mkRecs("self", rng.Intn(50)),
		Remote:   map[string][]usage.Record{},
		Watermark: map[string]time.Time{
			"p1": time.Unix(0, rng.Int63()).UTC(),
		},
	}
	if rng.Intn(2) == 0 {
		st.Policy = []byte(`{"root":{}}`)
	}
	for i := 0; i < rng.Intn(4); i++ {
		peer := "peer" + string(rune('0'+i))
		st.Remote[peer] = mkRecs(peer, rng.Intn(30))
		st.Watermark[peer] = time.Unix(0, rng.Int63()).UTC()
	}
	return st
}

// TestSnapshotEncodeDecodeRoundTrip: random states survive the binary
// encoding bit-exactly (reflect.DeepEqual covers the float64 values since
// the generator never produces NaN).
func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		st := randState(rng)
		dec, err := decodeSnapshot(encodeSnapshot(st))
		if err != nil {
			t.Fatalf("state %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(st, dec) {
			t.Fatalf("state %d: round trip differs:\n got %+v\nwant %+v", i, dec, st)
		}
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	st := randState(rand.New(rand.NewSource(4)))
	enc := encodeSnapshot(st)
	for _, cut := range []int{0, 4, len(enc) / 2, len(enc) - 1} {
		if _, err := decodeSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := decodeSnapshot(bad); err == nil {
		t.Fatal("bit flip accepted")
	}
}

// TestSnapshotCompactsAndPrunes: after a snapshot, recovery starts from the
// snapshot image plus only the post-rotation WAL tail, and superseded
// segments/snapshots are removed from disk.
func TestSnapshotCompactsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncAlways)
	replayAll(t, d)
	commitN(t, d, 10, 0)

	captured := &SnapshotState{
		BinWidth: time.Hour,
		Site:     "s00",
		Local: []usage.Record{{
			User: "alice", Site: "s00",
			IntervalStart: time.Unix(3600, 0).UTC(),
			CoreSeconds:   12.5,
		}},
		Remote:    map[string][]usage.Record{},
		Watermark: map[string]time.Time{},
	}
	if err := d.Snapshot(func() (*SnapshotState, error) { return captured, nil }); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	commitN(t, d, 4, 100)
	// Second snapshot cycle to exercise pruning of snapshot 1.
	if err := d.Snapshot(func() (*SnapshotState, error) { return captured, nil }); err != nil {
		t.Fatalf("Snapshot 2: %v", err)
	}
	commitN(t, d, 3, 200)
	d.Close()

	if _, err := os.Stat(filepath.Join(dir, segmentName(0))); !os.IsNotExist(err) {
		t.Fatalf("segment 0 not pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(1))); !os.IsNotExist(err) {
		t.Fatalf("snapshot 1 not pruned: %v", err)
	}

	d2 := openTest(t, dir, SyncAlways)
	if got := d2.Recovered(); got == nil || !reflect.DeepEqual(got, captured) {
		t.Fatalf("recovered state differs: %+v", got)
	}
	got := replayAll(t, d2)
	if len(got) != 3 {
		t.Fatalf("replayed %d tail records, want 3 (post-snapshot only)", len(got))
	}
	if !mutationsEqual(got[0], testMutation(200)) {
		t.Fatal("tail does not start at the post-snapshot commit")
	}
}

// TestCommitBlocksUntilReplay: a commit racing recovery waits for the tail
// to be applied instead of interleaving with it.
func TestCommitBlocksUntilReplay(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncAlways)
	replayAll(t, d)
	commitN(t, d, 5, 0)
	d.Close()

	d2 := openTest(t, dir, SyncAlways)
	applied := make(chan struct{})
	go func() {
		if err := d2.Commit(testMutation(50), func() { close(applied) }); err != nil {
			t.Errorf("blocked commit failed: %v", err)
		}
	}()
	select {
	case <-applied:
		t.Fatal("commit applied before replay finished")
	case <-time.After(50 * time.Millisecond):
	}
	replayed := replayAll(t, d2)
	select {
	case <-applied:
	case <-time.After(2 * time.Second):
		t.Fatal("commit still blocked after replay")
	}
	if len(replayed) != 5 {
		t.Fatalf("replay saw %d records, want 5 — the blocked commit leaked into the tail", len(replayed))
	}
}

// TestFrozenRecordsServedDuringRecovery: between Open and the end of
// Replay, FrozenRecordsSince serves the snapshot's local records; after
// replay it defers to the live path.
func TestFrozenRecordsServedDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncAlways)
	replayAll(t, d)
	st := &SnapshotState{
		BinWidth: time.Hour,
		Site:     "s00",
		Local: []usage.Record{
			{User: "a", Site: "s00", IntervalStart: time.Unix(3600, 0).UTC(), CoreSeconds: 1},
			{User: "a", Site: "s00", IntervalStart: time.Unix(7200, 0).UTC(), CoreSeconds: 2},
			{User: "b", Site: "s00", IntervalStart: time.Unix(7200, 0).UTC(), CoreSeconds: 3},
		},
		Remote:    map[string][]usage.Record{},
		Watermark: map[string]time.Time{},
	}
	if err := d.Snapshot(func() (*SnapshotState, error) { return st, nil }); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	commitN(t, d, 2, 0)
	d.Close()

	d2 := openTest(t, dir, SyncAlways)
	recs, ok := d2.FrozenRecordsSince("s00", time.Unix(7200, 0))
	if !ok {
		t.Fatal("frozen serving unavailable while recovering")
	}
	if len(recs) != 2 {
		t.Fatalf("frozen since filter returned %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.IntervalStart.Before(time.Unix(7200, 0)) {
			t.Fatalf("frozen record before the since bound: %+v", r)
		}
	}
	replayAll(t, d2)
	if _, ok := d2.FrozenRecordsSince("s00", time.Time{}); ok {
		t.Fatal("frozen serving still active after replay")
	}
}

// TestOneFsyncPerCommit is the group-commit contract at the log layer: one
// Commit — whatever the mutation's size — costs exactly one fsync under
// SyncAlways, and zero under SyncNone.
func TestOneFsyncPerCommit(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncAlways)
	replayAll(t, d)

	big := &usage.Mutation{Kind: usage.MutLocalBatch}
	for i := 0; i < 1000; i++ {
		big.Ops = append(big.Ops, usage.BinOp{User: "u", Start: int64(i) * 3600, Value: 1})
	}
	before := d.Stats()
	if err := d.Commit(big, nil); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	after := d.Stats()
	if got := after.Fsyncs - before.Fsyncs; got != 1 {
		t.Fatalf("1000-op batch commit cost %d fsyncs, want exactly 1", got)
	}
	if after.Records-before.Records != 1 {
		t.Fatalf("batch counted as %d records, want 1", after.Records-before.Records)
	}

	dn := openTest(t, t.TempDir(), SyncNone)
	replayAll(t, dn)
	if err := dn.Commit(big, nil); err != nil {
		t.Fatalf("SyncNone commit: %v", err)
	}
	if s := dn.Stats(); s.Fsyncs != 0 {
		t.Fatalf("SyncNone performed %d fsyncs", s.Fsyncs)
	}
}

func TestReadyLifecycle(t *testing.T) {
	d := openTest(t, t.TempDir(), SyncNone)
	if d.Ready() {
		t.Fatal("ready before replay")
	}
	if !d.Recovering() {
		t.Fatal("fresh log should start recovering (empty tail)")
	}
	replayAll(t, d)
	if d.Recovering() {
		t.Fatal("recovering after replay")
	}
	if d.Ready() {
		t.Fatal("ready before MarkReady")
	}
	d.MarkReady()
	if !d.Ready() {
		t.Fatal("not ready after MarkReady")
	}
}

func TestReplayProgress(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncNone)
	replayAll(t, d)
	commitN(t, d, 7, 0)
	d.Close()

	d2 := openTest(t, dir, SyncNone)
	if done, total := d2.ReplayProgress(); done != 0 || total != 7 {
		t.Fatalf("pre-replay progress %d/%d, want 0/7", done, total)
	}
	seen := 0
	if err := d2.Replay(func(m *usage.Mutation) error {
		seen++
		if done, _ := d2.ReplayProgress(); done != int64(seen-1) {
			t.Fatalf("progress %d while applying record %d", done, seen)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if done, total := d2.ReplayProgress(); done != 7 || total != 7 {
		t.Fatalf("post-replay progress %d/%d, want 7/7", done, total)
	}
}

func TestSnapshotWhileRecoveringRefused(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncNone)
	replayAll(t, d)
	commitN(t, d, 1, 0)
	d.Close()
	d2 := openTest(t, dir, SyncNone)
	err := d2.Snapshot(func() (*SnapshotState, error) {
		return &SnapshotState{BinWidth: time.Hour}, nil
	})
	if err == nil {
		t.Fatal("snapshot accepted while recovering")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("none"); err != nil || p != SyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("maybe"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestFloatFidelityThroughSnapshot: awkward float64 values survive the
// snapshot encoding bit-for-bit.
func TestFloatFidelityThroughSnapshot(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64, 1.0 / 3.0, 0.1 + 0.2}
	st := &SnapshotState{BinWidth: time.Hour, Site: "s", Remote: map[string][]usage.Record{}, Watermark: map[string]time.Time{}}
	for i, v := range vals {
		st.Local = append(st.Local, usage.Record{
			User: "u", Site: "s",
			IntervalStart: time.Unix(int64(i)*3600, 0).UTC(),
			CoreSeconds:   v,
		})
	}
	dec, err := decodeSnapshot(encodeSnapshot(st))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float64bits(dec.Local[i].CoreSeconds) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d (%g) lost bits", i, vals[i])
		}
	}
}
