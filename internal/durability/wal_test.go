package durability

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/usage"
)

// testMutation builds a small deterministic mutation distinguishable by i.
func testMutation(i int) *usage.Mutation {
	return &usage.Mutation{
		Kind: usage.MutLocalAdd,
		Ops: []usage.BinOp{{
			User:  fmt.Sprintf("user%03d", i%7),
			Start: int64(i) * 3600,
			Value: float64(i) * 1.25,
		}},
	}
}

func openTest(t *testing.T, dir string, sync SyncPolicy) *Log {
	t.Helper()
	d, err := Open(Options{Dir: dir, Sync: sync, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// replayAll drains the log's tail, returning the replayed mutations.
func replayAll(t *testing.T, d *Log) []*usage.Mutation {
	t.Helper()
	var got []*usage.Mutation
	if err := d.Replay(func(m *usage.Mutation) error {
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func commitN(t *testing.T, d *Log, n, from int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := d.Commit(testMutation(i), nil); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
}

func mutationsEqual(a, b *usage.Mutation) bool {
	return string(a.AppendBinary(nil)) == string(b.AppendBinary(nil))
}

func TestLogCommitReopenReplay(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncAlways)
	replayAll(t, d) // fresh dir: empty tail
	commitN(t, d, 25, 0)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2 := openTest(t, dir, SyncAlways)
	if !d2.Recovering() {
		t.Fatal("reopened log not recovering")
	}
	got := replayAll(t, d2)
	if len(got) != 25 {
		t.Fatalf("replayed %d records, want 25", len(got))
	}
	for i, m := range got {
		if !mutationsEqual(m, testMutation(i)) {
			t.Fatalf("record %d differs after reopen", i)
		}
	}
	if d2.Recovering() {
		t.Fatal("still recovering after Replay")
	}
}

// TestTornWriteEveryOffset truncates the final record at every byte offset
// and asserts recovery lands cleanly on the last complete record, stays
// writable, and preserves the new commit across another reopen.
func TestTornWriteEveryOffset(t *testing.T) {
	master := t.TempDir()
	d := openTest(t, master, SyncAlways)
	replayAll(t, d)
	commitN(t, d, 3, 0)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(master, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := frameHeaderSize + len(testMutation(2).AppendBinary(nil))
	lastStart := len(data) - lastLen
	if lastStart <= len(walMagic) {
		t.Fatalf("segment layout unexpected: %d bytes, last frame %d", len(data), lastLen)
	}

	for cut := lastStart; cut < len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Open(Options{Dir: dir, Sync: SyncAlways, Metrics: telemetry.NewRegistry()})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		got := replayAll(t, d)
		if len(got) != 2 {
			t.Fatalf("cut %d: recovered %d records, want 2", cut, len(got))
		}
		// The log must be writable after truncation, and the write must
		// survive another crash/reopen cycle.
		if err := d.Commit(testMutation(99), nil); err != nil {
			t.Fatalf("cut %d: Commit after recovery: %v", cut, err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		d2, err := Open(Options{Dir: dir, Sync: SyncAlways, Metrics: telemetry.NewRegistry()})
		if err != nil {
			t.Fatalf("cut %d: second Open: %v", cut, err)
		}
		got2 := replayAll(t, d2)
		if len(got2) != 3 || !mutationsEqual(got2[2], testMutation(99)) {
			t.Fatalf("cut %d: second recovery got %d records", cut, len(got2))
		}
		d2.Close()
	}
}

// TestCorruptionMidLogFailsLoudly flips one byte inside an early record and
// asserts Open fails with a CorruptionError naming the segment and the
// offset of the damaged frame.
func TestCorruptionMidLogFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncAlways)
	replayAll(t, d)
	commitN(t, d, 5, 0)
	d.Close()

	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the payload of the second frame: its frame starts after the
	// magic plus frame 0.
	frame0 := frameHeaderSize + len(testMutation(0).AppendBinary(nil))
	wantOff := int64(len(walMagic) + frame0)
	data[wantOff+frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(Options{Dir: dir, Sync: SyncAlways, Metrics: telemetry.NewRegistry()})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open on corrupt log: got %v, want CorruptionError", err)
	}
	if ce.Path != seg || ce.Offset != wantOff {
		t.Fatalf("corruption reported at %s:%d, want %s:%d", ce.Path, ce.Offset, seg, wantOff)
	}
}

// TestCorruptionRandomFlips fuzzes single-byte flips across the whole log
// body: every flip inside a frame must surface as a corruption error (CRC)
// — never a silently different record stream.
func TestCorruptionRandomFlips(t *testing.T) {
	master := t.TempDir()
	d := openTest(t, master, SyncAlways)
	replayAll(t, d)
	commitN(t, d, 10, 0)
	d.Close()
	data, err := os.ReadFile(filepath.Join(master, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		pos := len(walMagic) + rng.Intn(len(data)-len(walMagic))
		mut := append([]byte(nil), data...)
		mut[pos] ^= 1 << rng.Intn(8)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Open(Options{Dir: dir, Sync: SyncAlways, Metrics: telemetry.NewRegistry()})
		if err != nil {
			continue // loud failure is the expected outcome
		}
		// A flip in a length field can masquerade as a torn tail — the
		// recovered prefix must then still be a prefix of the original
		// records, never altered data.
		got := replayAll(t, d)
		for i, m := range got {
			if i < 10 && !mutationsEqual(m, testMutation(i)) {
				t.Fatalf("trial %d (flip at %d): record %d silently altered", trial, pos, i)
			}
		}
		if len(got) > 10 {
			t.Fatalf("trial %d: recovered %d records from a 10-record log", trial, len(got))
		}
		d.Close()
	}
}

// TestTornMiddleSegmentIsLoud: a short frame in a non-final segment is
// corruption, not a torn tail.
func TestTornMiddleSegmentIsLoud(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, SyncAlways)
	replayAll(t, d)
	commitN(t, d, 3, 0)
	// Rotate via snapshot so a second segment exists.
	if err := d.Snapshot(func() (*SnapshotState, error) {
		return &SnapshotState{BinWidth: time.Hour, Site: "s"}, nil
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	commitN(t, d, 2, 10)
	d.Close()

	// Re-create segment 0 (pruned by the snapshot) with a torn tail and
	// remove the snapshot, forcing recovery to read it as a middle segment.
	for _, snap := range []string{snapshotName(1)} {
		os.Remove(filepath.Join(dir, snap))
	}
	seg0 := filepath.Join(dir, segmentName(0))
	f, err := createSegment(seg0)
	if err != nil {
		t.Fatal(err)
	}
	frame := appendFrame(nil, testMutation(0).AppendBinary(nil))
	if _, err := f.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = Open(Options{Dir: dir, Sync: SyncAlways, Metrics: telemetry.NewRegistry()})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Open with torn middle segment: got %v, want CorruptionError", err)
	}
}
