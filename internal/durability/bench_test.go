package durability

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/usage"
)

// benchBatch builds one batch mutation of n ops spread over distinct users.
func benchBatch(n, salt int) *usage.Mutation {
	m := &usage.Mutation{Kind: usage.MutLocalBatch, Ops: make([]usage.BinOp, n)}
	for i := range m.Ops {
		m.Ops[i] = usage.BinOp{
			User:  fmt.Sprintf("user%06d", (salt*n+i)%100000),
			Start: int64(1393632000 + (i%720)*3600),
			Value: 3600 * float64(1+i%8),
		}
	}
	return m
}

// BenchmarkWALReplay measures cold recovery: open a log whose tail holds
// 100k ops (100 group-committed batches of 1000) and replay it into a fresh
// histogram — the startup cost a crashed site pays before serving live data.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	d, err := Open(Options{Dir: dir, Sync: SyncNone, Metrics: telemetry.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Replay(func(*usage.Mutation) error { return nil }); err != nil {
		b.Fatal(err)
	}
	const batches, perBatch = 100, 1000
	for i := 0; i < batches; i++ {
		if err := d.Commit(benchBatch(perBatch, i), nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := Open(Options{Dir: dir, Sync: SyncNone, Metrics: telemetry.NewRegistry()})
		if err != nil {
			b.Fatal(err)
		}
		h := usage.NewHistogram(time.Hour)
		n := 0
		if err := d.Replay(func(m *usage.Mutation) error {
			h.IngestBatch(m.Records("bench"))
			n += len(m.Ops)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != batches*perBatch {
			b.Fatalf("replayed %d ops, want %d", n, batches*perBatch)
		}
		d.Close()
	}
	b.ReportMetric(float64(batches*perBatch), "ops/replay")
}

// BenchmarkWALCommitBatch measures the group-commit write path: one fsynced
// WAL append per 1000-op batch.
func BenchmarkWALCommitBatch(b *testing.B) {
	d, err := Open(Options{Dir: b.TempDir(), Sync: SyncAlways, Metrics: telemetry.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.Replay(func(*usage.Mutation) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Commit(benchBatch(1000, i), nil); err != nil {
			b.Fatal(err)
		}
	}
	if got := d.Stats().Fsyncs; got != int64(b.N) {
		b.Fatalf("%d fsyncs for %d batches", got, b.N)
	}
}

// BenchmarkSnapshotWrite measures compacting a 100k-record state into a
// snapshot file.
func BenchmarkSnapshotWrite(b *testing.B) {
	st := &SnapshotState{BinWidth: time.Hour, Site: "bench"}
	for i := 0; i < 100000; i++ {
		st.Local = append(st.Local, usage.Record{
			User:          fmt.Sprintf("user%06d", i),
			IntervalStart: time.Unix(1393632000+int64(i%720)*3600, 0).UTC(),
			CoreSeconds:   float64(i) * 1.5,
		})
	}
	d, err := Open(Options{Dir: b.TempDir(), Sync: SyncAlways, Metrics: telemetry.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.Replay(func(*usage.Mutation) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Snapshot(func() (*SnapshotState, error) { return st, nil }); err != nil {
			b.Fatal(err)
		}
	}
}
