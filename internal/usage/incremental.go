package usage

import (
	"math"
	"time"
)

// Incremental exponential totals.
//
// Exponential half-life decay factors through time: for any reference
// instant ref,
//
//	Σ v_i · 2^(-(now-mid_i)/H)  =  2^(-(now-ref)/H) · Σ v_i · 2^(-(ref-mid_i)/H)
//
// so the histogram keeps, per user, the sum decayed to ref and serves a
// totals pass by advancing every user with ONE shared scalar multiply —
// O(users) instead of O(users × bins). Mutations fold new usage into the
// per-user sum as O(1) updates (one Exp2 against ref per touched bin).
//
// Two deviations from the pure algebra are handled explicitly:
//
//   - Clamping: the per-bin definition clamps ages below zero (a bin whose
//     midpoint is in the future of `now` weighs 1, not >1). Users whose
//     newest bin midpoint is past `now` are computed exactly per-bin; the
//     incremental sum takes over once `now` passes their newest bin.
//   - Conditioning: the reference instant is rebased to `now` whenever it
//     drifts more than rebaseHalfLives half-lives, which bounds every
//     stored magnitude within 2^±rebaseHalfLives of its true scale; a
//     mutation that cannot be represented that way (a far-future bin, or a
//     value decrease whose cancellation could compound) marks the user
//     dirty, and the next totals pass recomputes that user from its bins.
//
// The equivalence property tests in equivalence_test.go pin this path to
// ≤1e-9 relative error against the naive per-bin sum.

// rebaseHalfLives bounds how far (in half-lives) the reference instant may
// drift from `now`, and how far a bin midpoint may sit in the future of the
// reference before the delta update is abandoned for a recompute. 16 keeps
// intermediate magnitudes within 2^±16 of true scale, so accumulated
// rounding stays orders of magnitude under the 1e-9 equivalence bound.
const rebaseHalfLives = 16.0

// expTracker is one registered half-life's incremental state. The per-user
// sums live in userBins.exp at this tracker's index. Guarded by the stripe
// locks: mutated only under all stripe write locks.
type expTracker struct {
	halfLife time.Duration
	ref      time.Time // reference instant of the per-user sums
	lastUse  uint64    // generation of last totals pass (LRU eviction)
}

// maxTrackers caps registered half-lives. Queries beyond the cap evict the
// least-recently-used tracker; pathological churn (a new half-life every
// call) degrades to the memoized per-bin path cost, never to unbounded
// per-mutation work.
const maxTrackers = 4

// expState is one user's sum under one tracker.
type expState struct {
	sum   float64 // Σ v·2^(-(ref-mid)/H), valid when !dirty
	dirty bool    // sum unreliable; recompute from bins at next pass
}

// weightAtRef returns 2^(-(ref-mid)/H) and whether it is representable
// within the conditioning bounds (false ⇒ caller must mark dirty).
func (tr *expTracker) weightAtRef(mid time.Time) (float64, bool) {
	x := float64(tr.ref.Sub(mid)) / float64(tr.halfLife)
	if x < -rebaseHalfLives {
		return 0, false // bin far in the future of ref: 2^-x would blow up
	}
	return math.Exp2(-x), true
}

// trackersAdd folds a bin delta into every registered tracker's per-user
// sum. The owning stripe's write lock must be held. Negative deltas (bin
// overwritten downward or removed) poison the running sum with potential
// cancellation, so they mark the user dirty instead; exchange overwrites
// are monotone in the common case, keeping this rare.
func (h *Histogram) trackersAdd(u *userBins, start int64, delta float64) {
	if len(h.trackers) == 0 {
		return
	}
	mid := h.midTime(start)
	for i, tr := range h.trackers {
		es := &u.exp[i]
		if es.dirty {
			continue
		}
		if delta < 0 {
			es.dirty = true
			continue
		}
		w, ok := tr.weightAtRef(mid)
		if !ok {
			es.dirty = true
			continue
		}
		es.sum += delta * w
	}
}

// trackerFor finds or registers the tracker for halfLife. All stripe write
// locks must be held. Registration walks every bin once to seed the
// per-user sums at ref=now; eviction removes the least-recently-used
// tracker's column from every user.
func (h *Histogram) trackerFor(halfLife time.Duration, now time.Time) *expTracker {
	h.genCounter++
	for _, tr := range h.trackers {
		if tr.halfLife == halfLife {
			tr.lastUse = h.genCounter
			return tr
		}
	}
	if len(h.trackers) >= maxTrackers {
		h.evictLRU()
	}
	tr := &expTracker{halfLife: halfLife, ref: now, lastUse: h.genCounter}
	idx := len(h.trackers)
	h.trackers = append(h.trackers, tr)
	for i := range h.stripes {
		for _, u := range h.stripes[i].users {
			u.exp = append(u.exp, expState{})
			es := &u.exp[idx]
			for _, b := range u.bins {
				w, ok := tr.weightAtRef(h.midTime(b.start))
				if !ok {
					es.dirty = true
					break
				}
				es.sum += b.v * w
			}
		}
	}
	return tr
}

// evictLRU drops the least-recently-used tracker and its column of per-user
// state. All stripe write locks must be held.
func (h *Histogram) evictLRU() {
	victim := 0
	for i, tr := range h.trackers {
		if tr.lastUse < h.trackers[victim].lastUse {
			victim = i
		}
	}
	h.trackers = append(h.trackers[:victim], h.trackers[victim+1:]...)
	for i := range h.stripes {
		for _, u := range h.stripes[i].users {
			u.exp = append(u.exp[:victim], u.exp[victim+1:]...)
		}
	}
}

// accumExp adds exponential-half-life totals via the incremental
// accumulators. All stripe write locks must be held.
func (h *Histogram) accumExp(dst map[string]float64, now time.Time, d ExponentialHalfLife) {
	tr := h.trackerFor(d.HalfLife, now)
	idx := 0
	for i, t := range h.trackers {
		if t == tr {
			idx = i
			break
		}
	}
	hl := float64(d.HalfLife)
	drift := float64(now.Sub(tr.ref)) / hl
	if math.Abs(drift) > rebaseHalfLives {
		// Rebase: advance every clean sum to the new reference in one
		// scalar multiply. Dirty sums are recomputed below anyway.
		f := math.Exp2(-drift)
		for i := range h.stripes {
			for _, u := range h.stripes[i].users {
				if !u.exp[idx].dirty {
					u.exp[idx].sum *= f
				}
			}
		}
		tr.ref = now
		drift = 0
	}
	factor := math.Exp2(-drift)
	// The clean-user fast path runs once per user per pass: keep it on
	// int64 arithmetic (a bin midpoint in nanoseconds is start·1e9 + half).
	nowNs := now.UnixNano()
	halfNs := int64(h.half)
	for i := range h.stripes {
		for name, u := range h.stripes[i].users {
			es := &u.exp[idx]
			future := len(u.bins) > 0 && u.lastStart()*int64(time.Second)+halfNs > nowNs
			if !es.dirty && !future {
				dst[name] += es.sum * factor
				continue
			}
			// Exact per-bin walk (age-clamped), for users with future
			// bins or an unreliable incremental sum.
			var sum float64
			for _, b := range u.bins {
				age := now.Sub(h.midTime(b.start))
				if age < 0 {
					age = 0
				}
				sum += b.v * math.Exp2(-float64(age)/hl)
			}
			dst[name] += sum
			if !future {
				// Persist the cleaned sum, re-expressed at ref. factor
				// is within 2^±rebaseHalfLives (see rebase above), so
				// the division is well conditioned.
				es.sum = sum / factor
				es.dirty = false
			}
		}
	}
}
