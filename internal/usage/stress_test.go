package usage

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistogramStressAllOps hammers every mutation and read primitive from
// concurrent goroutines (run under -race in CI). One dedicated writer makes
// deterministic adds to an "accounting" user so the final state is
// checkable despite the surrounding chaos.
func TestHistogramStressAllOps(t *testing.T) {
	h := NewHistogram(time.Minute)
	const (
		writers = 6
		readers = 4
		rounds  = 300
	)
	var writeWG, readWG sync.WaitGroup
	var stop atomic.Bool

	// Deterministic accountant: known total, fixed user.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		for i := 0; i < rounds; i++ {
			h.Add("accountant", t0.Add(time.Duration(i)*time.Second), 2)
			h.AddSpread("accountant", t0.Add(time.Duration(i)*time.Minute), 90*time.Second, 1)
		}
	}()

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			user := fmt.Sprintf("chaos%d", w)
			for i := 0; i < rounds; i++ {
				at := t0.Add(time.Duration(rng.Intn(10000)) * time.Second)
				switch i % 5 {
				case 0:
					h.Add(user, at, rng.Float64()*10)
				case 1:
					h.AddSpread(user, at, time.Duration(1+rng.Intn(600))*time.Second, 1+rng.Intn(4))
				case 2:
					h.SetBin(user, at, rng.Float64()*20-2) // sometimes deletes
				case 3:
					h.IngestBatch([]Record{
						{User: user, IntervalStart: at, CoreSeconds: rng.Float64() * 5},
						{User: fmt.Sprintf("chaos%d", (w+1)%writers), IntervalStart: at, CoreSeconds: 1},
					})
				case 4:
					h.SetRecords([]Record{
						{User: user, IntervalStart: at, CoreSeconds: rng.Float64() * 30},
					})
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			d := ExponentialHalfLife{HalfLife: time.Hour}
			now := t0.Add(3 * time.Hour)
			for !stop.Load() {
				switch r % 4 {
				case 0:
					_ = h.DecayedTotals(now, d)
				case 1:
					_ = h.RecordsSince("s", t0.Add(time.Duration(r)*time.Hour))
				case 2:
					_ = h.Users()
					_ = h.Total("accountant")
				case 3:
					_ = h.Records("s")
					_ = h.Clone()
				}
			}
		}(r)
	}

	writeWG.Wait()
	stop.Store(true)
	readWG.Wait()

	want := float64(rounds)*2 + float64(rounds)*90
	if got := h.Total("accountant"); got != want {
		t.Errorf("accountant total = %g, want %g", got, want)
	}
	// The running total and the bins must agree after the dust settles.
	sum := 0.0
	for _, r := range h.Records("s") {
		if r.User == "accountant" {
			sum += r.CoreSeconds
		}
	}
	if got := h.Total("accountant"); got != sum {
		t.Errorf("running total %g != bin sum %g", got, sum)
	}
}

// TestDecayedTotalsReadConsistent is the torn-snapshot regression test: a
// writer keeps an invariant (the two bins of one user always sum to C) via
// atomic SetRecords batches, while readers take whole-histogram totals. The
// old implementation re-acquired the lock per user between Users() and each
// DecayedTotal, so a read could observe a state that existed at no single
// instant; the striped histogram holds every stripe for the duration of the
// pass, so the invariant must never appear broken.
func TestDecayedTotalsReadConsistent(t *testing.T) {
	h := NewHistogram(time.Hour)
	const C = 1 << 20 // power of two: k and C-k are exact in float64
	b0, b1 := t0, t0.Add(time.Hour)
	h.SetRecords([]Record{
		{User: "inv", IntervalStart: b0, CoreSeconds: C / 2},
		{User: "inv", IntervalStart: b1, CoreSeconds: C / 2},
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for !stop.Load() {
			k := float64(1 + rng.Intn(C-1))
			h.SetRecords([]Record{
				{User: "inv", IntervalStart: b0, CoreSeconds: k},
				{User: "inv", IntervalStart: b1, CoreSeconds: C - k},
			})
		}
	}()

	now := t0.Add(2 * time.Hour)
	for i := 0; i < 5000; i++ {
		got := h.DecayedTotals(now, None{})["inv"]
		if got != C {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("read %d: torn snapshot: total = %g, want %d", i, got, C)
		}
		if tot := h.Total("inv"); tot != C {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("read %d: torn running total = %g, want %d", i, tot, C)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestConcurrentDecayedTotalsAgree runs totals passes from many goroutines
// against a quiescent histogram: every pass must produce the identical map
// (the incremental accumulators mutate shared tracker state under the
// stripe locks; concurrent passes must not interfere).
func TestConcurrentDecayedTotalsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHistogram(time.Hour)
	for i := 0; i < 1000; i++ {
		h.Add(fmt.Sprintf("u%03d", rng.Intn(100)),
			t0.Add(time.Duration(rng.Intn(500))*time.Hour), 1+rng.Float64()*100)
	}
	d := ExponentialHalfLife{HalfLife: 24 * time.Hour}
	now := t0.Add(600 * time.Hour)
	want := seedDecayedTotals(h, now, d)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := h.DecayedTotals(now, d)
				for u, w := range want {
					g, ok := got[u]
					if !ok || absRel(g, w) > expRelTol {
						errs <- fmt.Errorf("user %s: got %v want %v", u, g, w)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func absRel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 1 {
		m = 1
	}
	return d / m
}
