package usage

// DeltaSet describes how decayed usage totals evolved since a consumer's
// last pull — the UMS hands the FCS the set of users whose totals changed,
// so steady-state fairshare refreshes can be incremental instead of
// re-reading the whole population.
//
// Version is a monotonically increasing watermark: it advances every time a
// recompute publishes totals that differ (bitwise) from the previous valid
// ones. Consumers store the Version they last acted on and pass it back as
// `since`.
//
// When Full is false, Changed maps each user whose total changed to its new
// absolute total (users that disappeared map to 0); users absent from
// Changed are bitwise unchanged. When Full is true the provider could not
// (or chose not to) produce a delta — first pull, watermark no longer
// covered by the provider's bounded log, or a change so large a delta would
// not pay off — and Totals carries the complete current totals instead.
//
// Changed and Totals reference the provider's internal state and MUST be
// treated as read-only by consumers.
type DeltaSet struct {
	Version uint64
	Full    bool
	Changed map[string]float64
	Totals  map[string]float64
}
