package usage

import (
	"fmt"
	"testing"
	"time"
)

func buildHistogram(users, binsPerUser int) *Histogram {
	h := NewHistogram(time.Minute)
	for u := 0; u < users; u++ {
		name := fmt.Sprintf("user%03d", u)
		for b := 0; b < binsPerUser; b++ {
			h.Add(name, t0.Add(time.Duration(b)*time.Minute), float64(b+1))
		}
	}
	return h
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(time.Minute)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add("user", t0.Add(time.Duration(i%360)*time.Minute), 1)
	}
}

func BenchmarkDecayedTotals(b *testing.B) {
	h := buildHistogram(10, 360) // 10 users × 6h of minute bins
	d := ExponentialHalfLife{HalfLife: time.Hour}
	now := t0.Add(7 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.DecayedTotals(now, d)
	}
}

func BenchmarkRecordsExport(b *testing.B) {
	h := buildHistogram(10, 360)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(h.Records("site")) == 0 {
			b.Fatal("no records")
		}
	}
}

func BenchmarkIngest(b *testing.B) {
	src := buildHistogram(10, 360)
	recs := src.Records("site")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHistogram(time.Minute)
		h.Ingest(recs)
	}
}
