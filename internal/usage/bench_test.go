package usage

import (
	"fmt"
	"testing"
	"time"
)

func buildHistogram(users, binsPerUser int) *Histogram {
	h := NewHistogram(time.Minute)
	for u := 0; u < users; u++ {
		name := fmt.Sprintf("user%03d", u)
		for b := 0; b < binsPerUser; b++ {
			h.Add(name, t0.Add(time.Duration(b)*time.Minute), float64(b+1))
		}
	}
	return h
}

// buildWide builds an hour-binned histogram with many users — the shape of
// the scalability benchmarks. Usage arrives in time order (append-mostly).
func buildWide(users, binsPerUser int) *Histogram {
	h := NewHistogram(time.Hour)
	for b := 0; b < binsPerUser; b++ {
		at := t0.Add(time.Duration(b) * time.Hour)
		for u := 0; u < users; u++ {
			h.Add(fmt.Sprintf("user%07d", u), at, float64(b+u+1))
		}
	}
	return h
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(time.Minute)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add("user", t0.Add(time.Duration(i%360)*time.Minute), 1)
	}
}

// BenchmarkHistogramAddParallel measures concurrent ingestion across many
// users — the lock-striping win over the old single global RWMutex.
func BenchmarkHistogramAddParallel(b *testing.B) {
	h := NewHistogram(time.Minute)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		user := fmt.Sprintf("user%p", pb) // distinct user per goroutine
		for pb.Next() {
			h.Add(user, t0.Add(time.Duration(i%360)*time.Minute), 1)
			i++
		}
	})
}

func BenchmarkDecayedTotals(b *testing.B) {
	h := buildHistogram(10, 360) // 10 users × 6h of minute bins
	d := ExponentialHalfLife{HalfLife: time.Hour}
	now := t0.Add(7 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.DecayedTotals(now, d)
	}
}

// decayedTotalsShapes are the user-count scale points of the pipeline
// benchmarks; bins-per-user shrinks as user count grows to keep setup sane
// while the per-bin/per-user cost split stays visible.
var decayedTotalsShapes = []struct{ users, bins int }{
	{1_000, 96},
	{100_000, 24},
	{1_000_000, 4},
}

// BenchmarkDecayedTotalsExp is the optimized path: O(users) incremental
// exponential totals (one shared scalar advance per pass, no per-bin Exp2).
func BenchmarkDecayedTotalsExp(b *testing.B) {
	for _, sh := range decayedTotalsShapes {
		b.Run(fmt.Sprintf("users=%d", sh.users), func(b *testing.B) {
			h := buildWide(sh.users, sh.bins)
			d := ExponentialHalfLife{HalfLife: 24 * time.Hour}
			now := t0.Add(time.Duration(sh.bins+1) * time.Hour)
			h.DecayedTotals(now, d) // prime: register the tracker
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(h.DecayedTotals(now, d)) != sh.users {
					b.Fatal("short totals")
				}
			}
		})
	}
}

// BenchmarkDecayedTotalsSeedStyle is the pre-optimization baseline: the
// seed's per-user pass (rebuild + sort the key set, one Weight evaluation
// per bin per user). Compare against BenchmarkDecayedTotalsExp at the same
// shape for the pipeline speedup.
func BenchmarkDecayedTotalsSeedStyle(b *testing.B) {
	for _, sh := range decayedTotalsShapes {
		if sh.users > 100_000 {
			continue // the baseline is too slow to be worth CI time at 1M
		}
		b.Run(fmt.Sprintf("users=%d", sh.users), func(b *testing.B) {
			h := buildWide(sh.users, sh.bins)
			d := ExponentialHalfLife{HalfLife: 24 * time.Hour}
			now := t0.Add(time.Duration(sh.bins+1) * time.Hour)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(seedDecayedTotals(h, now, d)) != sh.users {
					b.Fatal("short totals")
				}
			}
		})
	}
}

// BenchmarkDecayedTotalsWeightTable measures the memoized-weight path used
// by non-exponential decays: no per-user sorting, one Weight call per
// distinct bin start.
func BenchmarkDecayedTotalsWeightTable(b *testing.B) {
	h := buildWide(100_000, 24)
	d := Linear{Window: 100 * time.Hour}
	now := t0.Add(25 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(h.DecayedTotals(now, d)) != 100_000 {
			b.Fatal("short totals")
		}
	}
}

func BenchmarkRecordsExport(b *testing.B) {
	h := buildHistogram(10, 360)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(h.Records("site")) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkRecordsSinceTail exports a one-bin tail from histograms of
// growing total size. The binary-searched export costs O(users + tail):
// the numbers should stay flat as bins-per-user grows (the old path
// exported, sorted and filtered every record in the histogram).
func BenchmarkRecordsSinceTail(b *testing.B) {
	const users = 2000
	for _, bins := range []int{12, 96, 384} {
		b.Run(fmt.Sprintf("binsPerUser=%d", bins), func(b *testing.B) {
			h := buildWide(users, bins)
			// A fresh newest bin for a handful of users: the incremental
			// exchange's steady-state tail.
			tail := t0.Add(time.Duration(bins) * time.Hour)
			for u := 0; u < 20; u++ {
				h.Add(fmt.Sprintf("user%07d", u), tail, 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(h.RecordsSince("site", tail)) != 20 {
					b.Fatal("wrong tail")
				}
			}
		})
	}
}

func BenchmarkIngest(b *testing.B) {
	src := buildHistogram(10, 360)
	recs := src.Records("site")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHistogram(time.Minute)
		h.Ingest(recs)
	}
}

// BenchmarkIngestBatch measures bulk ingestion throughput (one lock
// acquisition per stripe per batch) at exchange-round sizes.
func BenchmarkIngestBatch(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			recs := make([]Record, n)
			for i := range recs {
				recs[i] = Record{
					User:          fmt.Sprintf("user%05d", i%4096),
					IntervalStart: t0.Add(time.Duration(i/4096) * time.Hour),
					CoreSeconds:   float64(i + 1),
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := NewHistogram(time.Hour)
				h.IngestBatch(recs)
			}
		})
	}
}

// BenchmarkSetRecords measures the exchange replacement path (re-fetched
// open intervals overwriting in place).
func BenchmarkSetRecords(b *testing.B) {
	const n = 10_000
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			User:          fmt.Sprintf("user%05d", i%4096),
			IntervalStart: t0.Add(time.Duration(i/4096) * time.Hour),
			CoreSeconds:   float64(i + 1),
		}
	}
	h := NewHistogram(time.Hour)
	h.SetRecords(recs) // steady state: bins exist, overwrites dominate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SetRecords(recs)
	}
}

// BenchmarkMergeSameWidth measures the stripe-aligned sorted merge.
func BenchmarkMergeSameWidth(b *testing.B) {
	src := buildWide(10_000, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewHistogram(time.Hour)
		dst.Merge(src)
	}
}
