// Package usage implements Aequus usage accounting: per-user resource
// consumption records, time-binned usage histograms with configurable decay
// functions, and the compact per-user/per-site exchange records the Usage
// Statistics Services trade between sites ("relaying the combined usage of
// each user on each site while omitting the details of individual jobs").
package usage

import (
	"math"
	"time"
)

// Decay weights historical usage by age, controlling "how the impact of
// previous usage is decreased over time". Weight must be in [0, 1], equal to
// 1 at age 0, and non-increasing in age.
type Decay interface {
	// Weight returns the multiplier applied to usage of the given age.
	Weight(age time.Duration) float64
	// Name identifies the decay function.
	Name() string
}

// ExponentialHalfLife decays usage by a factor of two every HalfLife.
// This is the default decay in the Aequus production configuration.
type ExponentialHalfLife struct {
	HalfLife time.Duration
}

// Name implements Decay.
func (d ExponentialHalfLife) Name() string { return "exp-half-life" }

// Weight implements Decay.
func (d ExponentialHalfLife) Weight(age time.Duration) float64 {
	if age <= 0 {
		return 1
	}
	if d.HalfLife <= 0 {
		return 1
	}
	return math.Exp2(-float64(age) / float64(d.HalfLife))
}

// Linear decays usage linearly to zero over Window.
type Linear struct {
	Window time.Duration
}

// Name implements Decay.
func (d Linear) Name() string { return "linear" }

// Weight implements Decay.
func (d Linear) Weight(age time.Duration) float64 {
	if age <= 0 {
		return 1
	}
	if d.Window <= 0 || age >= d.Window {
		return 0
	}
	return 1 - float64(age)/float64(d.Window)
}

// Step keeps full weight inside Window and drops to zero beyond it (a
// sliding-window accumulation).
type Step struct {
	Window time.Duration
}

// Name implements Decay.
func (d Step) Name() string { return "step" }

// Weight implements Decay.
func (d Step) Weight(age time.Duration) float64 {
	if d.Window > 0 && age > d.Window {
		return 0
	}
	return 1
}

// None applies no decay: all history counts equally.
type None struct{}

// Name implements Decay.
func (None) Name() string { return "none" }

// Weight implements Decay.
func (None) Weight(time.Duration) float64 { return 1 }
