package usage

import (
	"reflect"
	"time"
)

// WeightTable memoizes decay weights per distinct bin start for one
// (decay, now, bin width) evaluation. Bins are width-aligned, so a totals
// pass over any number of users — or over several histograms of the same
// width, as in the USS global local+remote merge — sees only a handful of
// distinct bin starts; one table computes each weight once instead of once
// per user per bin.
//
// A WeightTable is NOT safe for concurrent use: build one per recompute
// pass and share it across the sequential AccumulateDecayed calls of that
// pass.
type WeightTable struct {
	decay      Decay
	comparable bool
	now        time.Time
	binWidth   time.Duration
	half       time.Duration
	w          map[int64]float64
}

// NewWeightTable builds an empty table for evaluating d at `now` over bins
// of the given width.
func NewWeightTable(d Decay, now time.Time, binWidth time.Duration) *WeightTable {
	if d == nil {
		d = None{}
	}
	return &WeightTable{
		decay:      d,
		comparable: reflect.TypeOf(d).Comparable(),
		now:        now,
		binWidth:   binWidth,
		half:       binWidth / 2,
		w:          make(map[int64]float64, 64),
	}
}

// matches reports whether the table was built for exactly this evaluation.
// A table whose decay value is not comparable never matches (it still works
// for the pass it was built for, it just cannot be re-validated).
func (t *WeightTable) matches(d Decay, now time.Time, binWidth time.Duration) bool {
	if t == nil || !t.comparable || d == nil || !reflect.TypeOf(d).Comparable() {
		return false
	}
	return t.decay == d && t.now.Equal(now) && t.binWidth == binWidth
}

// Weight returns the decay weight of the bin starting at the given unix
// second, computing and caching it on first use. Ages are measured from the
// bin midpoint and clamped at zero, matching Histogram.DecayedTotal.
func (t *WeightTable) Weight(binStart int64) float64 {
	if w, ok := t.w[binStart]; ok {
		return w
	}
	age := t.now.Sub(time.Unix(binStart, 0).Add(t.half))
	if age < 0 {
		age = 0
	}
	w := t.decay.Weight(age)
	t.w[binStart] = w
	return w
}
