package usage

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPropertyRecordsIngestRoundTrip(t *testing.T) {
	// Exporting a histogram as compact records and ingesting them into a
	// fresh histogram preserves every user's total exactly.
	f := func(adds []struct {
		User   uint8
		Offset uint32
		Amount uint16
	}) bool {
		h := NewHistogram(time.Hour)
		for _, a := range adds {
			user := string(rune('a' + a.User%6))
			at := t0.Add(time.Duration(a.Offset%100000) * time.Second)
			h.Add(user, at, float64(a.Amount)+1)
		}
		h2 := NewHistogram(time.Hour)
		h2.Ingest(h.Records("s"))
		for _, u := range h.Users() {
			if math.Abs(h.Total(u)-h2.Total(u)) > 1e-9 {
				return false
			}
		}
		return len(h.Users()) == len(h2.Users())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecayedNeverExceedsTotal(t *testing.T) {
	f := func(adds []struct {
		Offset uint32
		Amount uint16
	}, hlSeconds uint32) bool {
		h := NewHistogram(time.Minute)
		for _, a := range adds {
			h.Add("u", t0.Add(time.Duration(a.Offset%100000)*time.Second), float64(a.Amount)+1)
		}
		d := ExponentialHalfLife{HalfLife: time.Duration(hlSeconds%100000+1) * time.Second}
		now := t0.Add(200000 * time.Second)
		dec := h.DecayedTotal("u", now, d)
		tot := h.Total("u")
		return dec >= 0 && dec <= tot+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergePreservesSums(t *testing.T) {
	f := func(a, b []struct {
		User   uint8
		Amount uint16
	}) bool {
		ha := NewHistogram(time.Hour)
		hb := NewHistogram(time.Hour)
		want := map[string]float64{}
		for _, x := range a {
			u := string(rune('a' + x.User%4))
			ha.Add(u, t0, float64(x.Amount)+1)
			want[u] += float64(x.Amount) + 1
		}
		for _, x := range b {
			u := string(rune('a' + x.User%4))
			hb.Add(u, t0, float64(x.Amount)+1)
			want[u] += float64(x.Amount) + 1
		}
		ha.Merge(hb)
		for u, w := range want {
			if math.Abs(ha.Total(u)-w) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddSpreadConservesUsage(t *testing.T) {
	// Spreading a job across bins conserves total core-seconds exactly
	// (within float tolerance), whatever the alignment.
	f := func(startOff uint32, durSec uint32, procs uint8) bool {
		h := NewHistogram(37 * time.Minute) // awkward width on purpose
		start := t0.Add(time.Duration(startOff%1000000) * time.Second)
		dur := time.Duration(durSec%500000+1) * time.Second
		p := int(procs%7) + 1
		h.AddSpread("u", start, dur, p)
		want := dur.Seconds() * float64(p)
		got := h.Total("u")
		return math.Abs(got-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
