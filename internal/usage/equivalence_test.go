package usage

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// equivalence_test.go pins the optimized totals paths — the O(users)
// incremental exponential accumulators, the memoized weight tables and the
// step-window binary search — to the seed-style per-bin reference sum:
// exact for None, Step and Linear (identical float operations in identical
// order), and ≤1e-9 relative error for exponential half-life decay.

const expRelTol = 1e-9

func checkClose(t *testing.T, ctx string, got, want map[string]float64, relTol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: user sets differ: got %d users, want %d", ctx, len(got), len(want))
	}
	for u, w := range want {
		g, ok := got[u]
		if !ok {
			t.Fatalf("%s: user %q missing", ctx, u)
		}
		if relTol == 0 {
			if g != w {
				t.Fatalf("%s: user %q: got %v, want exactly %v", ctx, u, g, w)
			}
			continue
		}
		tol := relTol * math.Max(math.Max(math.Abs(g), math.Abs(w)), 1)
		if math.Abs(g-w) > tol {
			t.Fatalf("%s: user %q: got %v, want %v (|Δ|=%g > %g)",
				ctx, u, g, w, math.Abs(g-w), tol)
		}
	}
}

// checkAllDecays compares DecayedTotals against the reference for the four
// decay families at `now`.
func checkAllDecays(t *testing.T, h *Histogram, now time.Time, halfLife time.Duration) {
	t.Helper()
	for _, tc := range []struct {
		d      Decay
		relTol float64
	}{
		{None{}, 0},
		{Step{Window: 6 * time.Hour}, 0},
		{Linear{Window: 48 * time.Hour}, 0},
		{ExponentialHalfLife{HalfLife: halfLife}, expRelTol},
	} {
		got := h.DecayedTotals(now, tc.d)
		want := seedDecayedTotals(h, now, tc.d)
		checkClose(t, fmt.Sprintf("%s at %v", tc.d.Name(), now), got, want, tc.relTol)
	}
}

// TestEquivalenceRandomizedWorkloads drives randomized mixes of every
// mutation primitive and re-verifies all four decay paths after each burst,
// with the query time walking forward (and occasionally jumping far enough
// to force reference rebasing, or stepping behind fresh bins to force the
// clamped exact path).
func TestEquivalenceRandomizedWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := NewHistogram(time.Hour)
			halfLife := time.Duration(1+rng.Intn(72)) * time.Hour
			users := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace"}
			now := t0
			randAt := func() time.Time {
				// Mostly near now, sometimes far in the past, sometimes
				// ahead of now (future bins exercise age clamping).
				switch rng.Intn(10) {
				case 0:
					return now.Add(-time.Duration(rng.Intn(2000)) * time.Hour)
				case 1:
					return now.Add(time.Duration(rng.Intn(30)) * time.Hour)
				default:
					return now.Add(-time.Duration(rng.Intn(48)) * time.Hour)
				}
			}
			for round := 0; round < 40; round++ {
				for op := 0; op < 30; op++ {
					u := users[rng.Intn(len(users))]
					switch rng.Intn(5) {
					case 0:
						h.Add(u, randAt(), 1+rng.Float64()*1e4)
					case 1:
						h.AddSpread(u, randAt(),
							time.Duration(1+rng.Intn(7200))*time.Minute, 1+rng.Intn(16))
					case 2:
						// Overwrite or delete a bin.
						v := 0.0
						if rng.Intn(4) > 0 {
							v = rng.Float64() * 2e4
						}
						h.SetBin(u, randAt(), v)
					case 3:
						recs := make([]Record, rng.Intn(8))
						for i := range recs {
							recs[i] = Record{
								User:          users[rng.Intn(len(users))],
								IntervalStart: randAt(),
								CoreSeconds:   rng.Float64() * 1e4,
							}
						}
						h.IngestBatch(recs)
					case 4:
						recs := make([]Record, rng.Intn(8))
						for i := range recs {
							recs[i] = Record{
								User:          users[rng.Intn(len(users))],
								IntervalStart: randAt(),
								CoreSeconds:   rng.Float64() * 2e4,
							}
						}
						h.SetRecords(recs)
					}
				}
				// Advance time; every few rounds jump far past the rebase
				// horizon, or step backwards behind data already written.
				switch rng.Intn(8) {
				case 0:
					now = now.Add(time.Duration(rebaseHalfLives*3) * halfLife)
				case 1:
					now = now.Add(-6 * time.Hour)
				default:
					now = now.Add(time.Duration(rng.Intn(5)) * time.Hour)
				}
				checkAllDecays(t, h, now, halfLife)
			}
		})
	}
}

// TestEquivalenceExchangeWorkload mirrors the inter-site exchange shape:
// each round re-fetches the open interval and overwrites it with a grown
// value via SetRecords (monotone overwrites — the case the incremental
// accumulators absorb as O(1) deltas), while the query time tracks the data.
func TestEquivalenceExchangeWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := NewHistogram(time.Hour)
	halfLife := 24 * time.Hour
	open := map[string]float64{}
	for round := 0; round < 200; round++ {
		binStart := t0.Add(time.Duration(round/4) * time.Hour)
		recs := make([]Record, 0, 8)
		for u := 0; u < 8; u++ {
			name := fmt.Sprintf("user%02d", u)
			open[name] += rng.Float64() * 1e3
			recs = append(recs, Record{
				User: name, IntervalStart: binStart, CoreSeconds: open[name],
			})
		}
		h.SetRecords(recs)
		if round%4 == 3 {
			// Interval closes; the next round starts a fresh open bin.
			for k := range open {
				delete(open, k)
			}
		}
		now := binStart.Add(time.Duration(rng.Intn(120)) * time.Minute)
		d := ExponentialHalfLife{HalfLife: halfLife}
		got := h.DecayedTotals(now, d)
		want := seedDecayedTotals(h, now, d)
		checkClose(t, fmt.Sprintf("round %d", round), got, want, expRelTol)
	}
}

// TestEquivalenceManyHalfLives cycles more distinct half-lives than the
// tracker cap, forcing LRU eviction and re-registration, and verifies every
// answer against the reference.
func TestEquivalenceManyHalfLives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram(30 * time.Minute)
	for i := 0; i < 500; i++ {
		h.Add(fmt.Sprintf("u%02d", rng.Intn(20)),
			t0.Add(time.Duration(rng.Intn(10000))*time.Minute), 1+rng.Float64()*1e3)
	}
	now := t0.Add(200 * time.Hour)
	for i := 0; i < 3*maxTrackers; i++ {
		hl := time.Duration(1+i) * time.Hour
		d := ExponentialHalfLife{HalfLife: hl}
		got := h.DecayedTotals(now, d)
		want := seedDecayedTotals(h, now, d)
		checkClose(t, fmt.Sprintf("halfLife=%v", hl), got, want, expRelTol)
		if len(h.trackers) > maxTrackers {
			t.Fatalf("tracker cap exceeded: %d", len(h.trackers))
		}
		now = now.Add(17 * time.Minute)
	}
}

// TestEquivalenceIncrementalStaysIncremental verifies the fast path is
// actually exercised: after a totals pass, a fresh in-order Add must leave
// the user clean (O(1) delta), and a shrinking overwrite must flag exactly
// the touched user for recompute.
func TestEquivalenceIncrementalStaysIncremental(t *testing.T) {
	h := NewHistogram(time.Hour)
	d := ExponentialHalfLife{HalfLife: 12 * time.Hour}
	h.Add("a", t0, 100)
	h.Add("b", t0, 200)
	now := t0.Add(2 * time.Hour)
	h.DecayedTotals(now, d) // registers the tracker
	if len(h.trackers) != 1 {
		t.Fatalf("trackers = %d, want 1", len(h.trackers))
	}

	h.Add("a", now.Add(-30*time.Minute), 50) // in-order add: O(1) fold
	st := h.stripeFor("a")
	st.mu.RLock()
	aDirty := st.users["a"].exp[0].dirty
	st.mu.RUnlock()
	if aDirty {
		t.Error("in-order Add marked user dirty; delta fold not taken")
	}

	h.SetBin("b", t0, 10) // shrink: must flag b, and only b
	st = h.stripeFor("b")
	st.mu.RLock()
	bDirty := st.users["b"].exp[0].dirty
	st.mu.RUnlock()
	if !bDirty {
		t.Error("shrinking SetBin left user clean; stale sum would be served")
	}

	now = now.Add(time.Hour)
	got := h.DecayedTotals(now, d)
	want := seedDecayedTotals(h, now, d)
	checkClose(t, "after mixed mutations", got, want, expRelTol)

	// The recompute pass must have cleaned b again.
	st.mu.RLock()
	bDirty = st.users["b"].exp[0].dirty
	st.mu.RUnlock()
	if bDirty {
		t.Error("totals pass did not persist the recomputed sum")
	}
}

// TestWeightTableSharing verifies one memoized table combining several
// same-width histograms yields exactly the separate-map merge, and that a
// mismatched table (different width) is ignored rather than misapplied.
func TestWeightTableSharing(t *testing.T) {
	a := NewHistogram(time.Hour)
	b := NewHistogram(time.Hour)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		at := t0.Add(time.Duration(rng.Intn(2000)) * time.Minute)
		a.Add(fmt.Sprintf("u%d", rng.Intn(10)), at, rng.Float64()*100)
		b.Add(fmt.Sprintf("u%d", rng.Intn(10)), at, rng.Float64()*100)
	}
	now := t0.Add(40 * time.Hour)
	d := Linear{Window: 100 * time.Hour}

	shared := map[string]float64{}
	wt := NewWeightTable(d, now, time.Hour)
	a.AccumulateDecayed(shared, now, d, wt)
	b.AccumulateDecayed(shared, now, d, wt)

	want := a.DecayedTotals(now, d)
	for u, v := range b.DecayedTotals(now, d) {
		want[u] += v
	}
	checkClose(t, "shared weight table", shared, want, 0)

	mismatched := map[string]float64{}
	wrong := NewWeightTable(d, now, time.Minute) // wrong width: must be ignored
	a.AccumulateDecayed(mismatched, now, d, wrong)
	checkClose(t, "mismatched weight table", mismatched, a.DecayedTotals(now, d), 0)
}

// TestRecordsSinceMatchesFilteredRecords pins the binary-searched tail
// export to the filter-everything definition.
func TestRecordsSinceMatchesFilteredRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHistogram(time.Hour)
	for i := 0; i < 400; i++ {
		h.Add(fmt.Sprintf("u%02d", rng.Intn(30)),
			t0.Add(time.Duration(rng.Intn(5000))*time.Minute), 1+rng.Float64()*10)
	}
	for _, since := range []time.Time{
		{}, // zero time: everything
		t0.Add(-time.Hour),
		t0.Add(20 * time.Hour),
		t0.Add(30*time.Hour + 17*time.Minute), // unaligned threshold
		t0.Add(9999 * time.Hour),              // nothing
	} {
		got := h.RecordsSince("s", since)
		all := h.Records("s")
		want := make([]Record, 0, len(all))
		for _, r := range all {
			if !r.IntervalStart.Before(since) {
				want = append(want, r)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("since %v: %d records, want %d", since, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("since %v: record %d = %+v, want %+v", since, i, got[i], want[i])
			}
		}
	}
}
