package usage

import (
	"sort"
	"time"
)

// seedDecayedTotals is the reference implementation the optimized paths are
// pinned against: the seed-style per-user pass that collects and sorts each
// user's bin keys and evaluates the decay weight for every bin of every
// user individually. It is deliberately independent of the incremental
// accumulators, the memoized weight tables and the step-window binary
// search — property tests compare against it, and the benchmarks use it as
// the pre-optimization baseline.
func seedDecayedTotals(h *Histogram, now time.Time, d Decay) map[string]float64 {
	if d == nil {
		d = None{}
	}
	out := map[string]float64{}
	h.rlockAll()
	defer h.runlockAll()
	for i := range h.stripes {
		for name, u := range h.stripes[i].users {
			// Mirror the seed's map-of-bins shape: rebuild the key set,
			// sort it, then weigh bin by bin.
			keys := make([]int64, 0, len(u.bins))
			vals := make(map[int64]float64, len(u.bins))
			for _, b := range u.bins {
				keys = append(keys, b.start)
				vals[b.start] = b.v
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			var sum float64
			for _, k := range keys {
				age := now.Sub(h.midTime(k))
				if age < 0 {
					age = 0
				}
				sum += vals[k] * d.Weight(age)
			}
			out[name] = sum
		}
	}
	return out
}
