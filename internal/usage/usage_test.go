package usage

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func TestDecayWeightsAtZeroAge(t *testing.T) {
	ds := []Decay{
		ExponentialHalfLife{HalfLife: time.Hour},
		Linear{Window: time.Hour},
		Step{Window: time.Hour},
		None{},
	}
	for _, d := range ds {
		if w := d.Weight(0); w != 1 {
			t.Errorf("%s Weight(0) = %g, want 1", d.Name(), w)
		}
		if w := d.Weight(-time.Minute); w != 1 && d.Name() != "step" {
			t.Errorf("%s Weight(neg) = %g, want 1", d.Name(), w)
		}
	}
}

func TestExponentialHalfLife(t *testing.T) {
	d := ExponentialHalfLife{HalfLife: time.Hour}
	if w := d.Weight(time.Hour); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("weight at one half-life = %g", w)
	}
	if w := d.Weight(2 * time.Hour); math.Abs(w-0.25) > 1e-12 {
		t.Errorf("weight at two half-lives = %g", w)
	}
	// Degenerate half-life means no decay.
	if w := (ExponentialHalfLife{}).Weight(time.Hour); w != 1 {
		t.Errorf("zero half-life weight = %g", w)
	}
}

func TestLinearDecay(t *testing.T) {
	d := Linear{Window: 10 * time.Minute}
	if w := d.Weight(5 * time.Minute); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("half-window weight = %g", w)
	}
	if w := d.Weight(10 * time.Minute); w != 0 {
		t.Errorf("full-window weight = %g", w)
	}
	if w := d.Weight(time.Hour); w != 0 {
		t.Errorf("past-window weight = %g", w)
	}
}

func TestStepDecay(t *testing.T) {
	d := Step{Window: time.Hour}
	if w := d.Weight(59 * time.Minute); w != 1 {
		t.Errorf("inside-window weight = %g", w)
	}
	if w := d.Weight(61 * time.Minute); w != 0 {
		t.Errorf("outside-window weight = %g", w)
	}
}

func TestDecayMonotoneNonIncreasing(t *testing.T) {
	ds := []Decay{
		ExponentialHalfLife{HalfLife: 30 * time.Minute},
		Linear{Window: 2 * time.Hour},
		Step{Window: time.Hour},
		None{},
	}
	for _, d := range ds {
		f := func(a, b uint32) bool {
			x := time.Duration(a%100000) * time.Second
			y := time.Duration(b%100000) * time.Second
			if x > y {
				x, y = y, x
			}
			wx, wy := d.Weight(x), d.Weight(y)
			return wy <= wx+1e-12 && wx >= 0 && wx <= 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestHistogramAddAndTotal(t *testing.T) {
	h := NewHistogram(time.Hour)
	h.Add("alice", t0, 100)
	h.Add("alice", t0.Add(30*time.Minute), 50) // same bin
	h.Add("alice", t0.Add(2*time.Hour), 25)
	h.Add("bob", t0, 10)
	if got := h.Total("alice"); got != 175 {
		t.Errorf("alice total = %g", got)
	}
	if got := h.Total("bob"); got != 10 {
		t.Errorf("bob total = %g", got)
	}
	if got := h.Total("carol"); got != 0 {
		t.Errorf("carol total = %g", got)
	}
	// Ignored inputs.
	h.Add("", t0, 5)
	h.Add("alice", t0, 0)
	h.Add("alice", t0, -3)
	if got := h.Total("alice"); got != 175 {
		t.Errorf("after ignored adds, total = %g", got)
	}
}

func TestHistogramUsersSorted(t *testing.T) {
	h := NewHistogram(time.Hour)
	h.Add("zed", t0, 1)
	h.Add("amy", t0, 1)
	us := h.Users()
	if len(us) != 2 || us[0] != "amy" || us[1] != "zed" {
		t.Errorf("Users = %v", us)
	}
}

func TestHistogramDecayedTotal(t *testing.T) {
	h := NewHistogram(time.Hour)
	h.Add("u", t0, 100)                   // bin [t0, t0+1h), midpoint t0+30m
	h.Add("u", t0.Add(10*time.Hour), 100) // midpoint t0+10.5h
	now := t0.Add(11 * time.Hour)
	d := ExponentialHalfLife{HalfLife: time.Hour}
	// Ages: 10.5h and 0.5h.
	want := 100*math.Exp2(-10.5) + 100*math.Exp2(-0.5)
	if got := h.DecayedTotal("u", now, d); math.Abs(got-want) > 1e-9 {
		t.Errorf("decayed = %g, want %g", got, want)
	}
	// nil decay treated as None.
	if got := h.DecayedTotal("u", now, nil); got != 200 {
		t.Errorf("nil decay total = %g", got)
	}
	// Future bins clamp to age zero.
	h2 := NewHistogram(time.Hour)
	h2.Add("u", t0.Add(5*time.Hour), 100)
	if got := h2.DecayedTotal("u", t0, d); got != 100 {
		t.Errorf("future bin decayed = %g, want 100", got)
	}
}

func TestHistogramAddSpread(t *testing.T) {
	h := NewHistogram(time.Hour)
	// 90-minute job starting at t0+30m, 2 procs: 60m in bin0, 30m in bin1.
	h.AddSpread("u", t0.Add(30*time.Minute), 90*time.Minute, 2)
	recs := h.Records("s")
	if len(recs) != 2 {
		t.Fatalf("records = %v", recs)
	}
	if math.Abs(recs[0].CoreSeconds-3600) > 1e-9 {
		t.Errorf("bin0 = %g, want 3600 (30m × 2 procs)", recs[0].CoreSeconds)
	}
	if math.Abs(recs[1].CoreSeconds-7200) > 1e-9 {
		t.Errorf("bin1 = %g, want 7200 (60m × 2 procs)", recs[1].CoreSeconds)
	}
	if got := h.Total("u"); math.Abs(got-10800) > 1e-9 {
		t.Errorf("total = %g, want 90m × 2 = 10800", got)
	}
}

func TestHistogramRecordsAndIngest(t *testing.T) {
	h := NewHistogram(time.Hour)
	h.Add("b", t0, 10)
	h.Add("a", t0.Add(time.Hour), 20)
	h.Add("a", t0, 5)
	recs := h.Records("site1")
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	// Sorted by user then interval.
	if recs[0].User != "a" || recs[1].User != "a" || recs[2].User != "b" {
		t.Errorf("order = %v", recs)
	}
	if !recs[0].IntervalStart.Before(recs[1].IntervalStart) {
		t.Error("intervals not sorted")
	}
	if recs[0].Site != "site1" {
		t.Errorf("site = %q", recs[0].Site)
	}

	// Ingesting into another histogram reproduces totals.
	h2 := NewHistogram(time.Hour)
	h2.Ingest(recs)
	if got := h2.Total("a"); got != 25 {
		t.Errorf("ingested a = %g", got)
	}
	if got := h2.Total("b"); got != 10 {
		t.Errorf("ingested b = %g", got)
	}
}

func TestRecordsSince(t *testing.T) {
	h := NewHistogram(time.Hour)
	h.Add("u", t0, 1)
	h.Add("u", t0.Add(5*time.Hour), 2)
	recs := h.RecordsSince("s", t0.Add(2*time.Hour))
	if len(recs) != 1 || recs[0].CoreSeconds != 2 {
		t.Errorf("RecordsSince = %v", recs)
	}
}

func TestHistogramMergeAndClone(t *testing.T) {
	a := NewHistogram(time.Hour)
	a.Add("u", t0, 10)
	b := NewHistogram(time.Hour)
	b.Add("u", t0, 5)
	b.Add("v", t0, 7)
	a.Merge(b)
	if got := a.Total("u"); got != 15 {
		t.Errorf("merged u = %g", got)
	}
	if got := a.Total("v"); got != 7 {
		t.Errorf("merged v = %g", got)
	}
	a.Merge(nil) // no-op

	c := a.Clone()
	c.Add("u", t0, 100)
	if a.Total("u") != 15 {
		t.Error("Clone shares state")
	}
}

func TestHistogramConcurrentAccess(t *testing.T) {
	h := NewHistogram(time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Add("u", t0.Add(time.Duration(i)*time.Second), 1)
				_ = h.DecayedTotal("u", t0.Add(time.Hour), ExponentialHalfLife{HalfLife: time.Hour})
				_ = h.Users()
			}
		}(w)
	}
	wg.Wait()
	if got := h.Total("u"); got != 8*500 {
		t.Errorf("concurrent total = %g, want 4000", got)
	}
}

func TestHistogramPreEpochBinning(t *testing.T) {
	h := NewHistogram(time.Hour)
	old := time.Date(1969, 12, 31, 23, 30, 0, 0, time.UTC)
	h.Add("u", old, 10)
	recs := h.Records("s")
	if len(recs) != 1 {
		t.Fatalf("records = %v", recs)
	}
	want := time.Date(1969, 12, 31, 23, 0, 0, 0, time.UTC)
	if !recs[0].IntervalStart.Equal(want) {
		t.Errorf("pre-epoch bin start = %v, want %v", recs[0].IntervalStart, want)
	}
}

func TestIngestBatchAccumulates(t *testing.T) {
	h := NewHistogram(time.Hour)
	h.IngestBatch([]Record{
		{User: "a", IntervalStart: t0, CoreSeconds: 10},
		{User: "a", IntervalStart: t0, CoreSeconds: 5}, // same bin: accumulates
		{User: "b", IntervalStart: t0.Add(time.Hour), CoreSeconds: 7},
		{User: "", IntervalStart: t0, CoreSeconds: 3},  // skipped
		{User: "a", IntervalStart: t0, CoreSeconds: 0}, // skipped
		{User: "a", IntervalStart: t0, CoreSeconds: -2},
	})
	if got := h.Total("a"); got != 15 {
		t.Errorf("a = %g, want 15", got)
	}
	if got := h.Total("b"); got != 7 {
		t.Errorf("b = %g, want 7", got)
	}
	h.IngestBatch(nil) // no-op
}

func TestSetRecordsReplacesAndDeletes(t *testing.T) {
	h := NewHistogram(time.Hour)
	h.Add("a", t0, 100)
	h.Add("a", t0.Add(time.Hour), 50)
	h.SetRecords([]Record{
		{User: "a", IntervalStart: t0, CoreSeconds: 10},               // overwrite
		{User: "a", IntervalStart: t0.Add(time.Hour), CoreSeconds: 0}, // delete
		{User: "b", IntervalStart: t0, CoreSeconds: 4},                // create
	})
	if got := h.Total("a"); got != 10 {
		t.Errorf("a = %g, want 10", got)
	}
	if got := h.Total("b"); got != 4 {
		t.Errorf("b = %g, want 4", got)
	}
	// Deleting a user's last bin removes the user.
	h.SetRecords([]Record{{User: "b", IntervalStart: t0, CoreSeconds: -1}})
	us := h.Users()
	if len(us) != 1 || us[0] != "a" {
		t.Errorf("Users = %v, want [a]", us)
	}
}

func TestOutOfOrderAddsStaySorted(t *testing.T) {
	h := NewHistogram(time.Hour)
	// Arrive out of time order: bins must still export sorted.
	h.Add("u", t0.Add(5*time.Hour), 5)
	h.Add("u", t0, 1)
	h.Add("u", t0.Add(2*time.Hour), 2)
	h.Add("u", t0.Add(time.Hour), 3)
	recs := h.Records("s")
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].IntervalStart.Before(recs[i].IntervalStart) {
			t.Fatalf("records out of order: %v", recs)
		}
	}
	if got := h.Total("u"); got != 11 {
		t.Errorf("total = %g, want 11", got)
	}
}

func TestMergeDifferingWidthsRebins(t *testing.T) {
	a := NewHistogram(time.Hour)
	b := NewHistogram(30 * time.Minute)
	b.Add("u", t0.Add(10*time.Minute), 5)
	b.Add("u", t0.Add(40*time.Minute), 7) // different half-hour, same hour
	a.Merge(b)
	recs := a.Records("s")
	if len(recs) != 1 || recs[0].CoreSeconds != 12 {
		t.Errorf("rebinned merge = %v, want one 12 core-second bin", recs)
	}
}

func TestNewHistogramDefaultsWidth(t *testing.T) {
	h := NewHistogram(0)
	if h.BinWidth() != time.Hour {
		t.Errorf("default width = %v", h.BinWidth())
	}
}
