package usage

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randMutation builds one random but well-formed mutation. Values cover the
// full float64 range including negative zero and denormals; starts cover
// negative (pre-epoch) bins, which exercises the zigzag encoding.
func randMutation(rng *rand.Rand) *Mutation {
	kinds := []MutationKind{MutLocalAdd, MutLocalBatch, MutRemoteSet, MutPolicy}
	m := &Mutation{Kind: kinds[rng.Intn(len(kinds))]}
	if m.Kind == MutPolicy {
		blob := make([]byte, rng.Intn(200))
		rng.Read(blob)
		m.Blob = blob
		return m
	}
	if m.Kind == MutRemoteSet {
		m.Site = randName(rng, "site")
		m.Watermark = rng.Int63() - rng.Int63()
	}
	n := rng.Intn(20)
	if m.Kind == MutLocalBatch {
		n = rng.Intn(200)
	}
	m.Ops = make([]BinOp, n)
	for i := range m.Ops {
		m.Ops[i] = BinOp{
			User:  randName(rng, "user"),
			Start: (rng.Int63n(1<<40) - 1<<39) * 3600,
			Value: randValue(rng),
		}
	}
	return m
}

func randName(rng *rand.Rand, prefix string) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-_"
	b := make([]byte, 1+rng.Intn(24))
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return prefix + string(b)
}

func randValue(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return math.Float64frombits(rng.Uint64() & (1<<52 - 1)) // denormal
	default:
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-3))
	}
}

// TestMutationRoundTrip drives random mutation sequences through
// encode/decode. The encoding is canonical (one byte sequence per value),
// so re-encoding the decoded mutation must reproduce the input bytes
// exactly — a bitwise check that also covers NaN-free float fidelity
// without tripping over NaN != NaN.
func TestMutationRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			m := randMutation(rng)
			enc := m.AppendBinary(nil)
			dec, err := DecodeMutation(enc)
			if err != nil {
				t.Fatalf("seed %d mutation %d: decode: %v", seed, i, err)
			}
			re := dec.AppendBinary(nil)
			if !bytes.Equal(enc, re) {
				t.Fatalf("seed %d mutation %d: re-encoded bytes differ (%d vs %d bytes)", seed, i, len(enc), len(re))
			}
			if dec.Kind != m.Kind || dec.Site != m.Site || dec.Watermark != m.Watermark {
				t.Fatalf("seed %d mutation %d: header fields differ: %+v vs %+v", seed, i, dec, m)
			}
			for j := range m.Ops {
				if math.Float64bits(dec.Ops[j].Value) != math.Float64bits(m.Ops[j].Value) {
					t.Fatalf("seed %d mutation %d op %d: value bits differ", seed, i, j)
				}
			}
		}
	}
}

// TestMutationDecodeTruncated checks that every strict prefix of an encoded
// mutation fails to decode (no prefix is silently accepted as a shorter
// valid mutation) — the property the WAL's torn-write recovery leans on.
func TestMutationDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		m := randMutation(rng)
		enc := m.AppendBinary(nil)
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeMutation(enc[:cut]); err == nil {
				t.Fatalf("mutation %d: %d-byte prefix of %d bytes decoded without error", i, cut, len(enc))
			}
		}
	}
}

func TestMutationDecodeRejectsBadHeader(t *testing.T) {
	m := &Mutation{Kind: MutLocalAdd, Ops: []BinOp{{User: "u", Start: 3600, Value: 1}}}
	enc := m.AppendBinary(nil)

	bad := append([]byte(nil), enc...)
	bad[0] = 99 // version
	if _, err := DecodeMutation(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[1] = 0 // kind below range
	if _, err := DecodeMutation(bad); err == nil {
		t.Fatal("kind 0 accepted")
	}
	bad[1] = 200 // kind above range
	if _, err := DecodeMutation(bad); err == nil {
		t.Fatal("kind 200 accepted")
	}
	if _, err := DecodeMutation(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestMutationRecordsMatchLivePath asserts that replaying a mutation's
// Records through IngestBatch reproduces the exact histogram state the live
// Add path built — the bit-identity contract recovery depends on.
func TestMutationRecordsMatchLivePath(t *testing.T) {
	live := NewHistogram(time.Hour)
	replayed := NewHistogram(time.Hour)
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 500; i++ {
		user := randName(rng, "user")
		at := base.Add(time.Duration(rng.Intn(100*3600)) * time.Second)
		v := rng.Float64() * 1e4
		live.Add(user, at, v)
		m := &Mutation{Kind: MutLocalAdd, Ops: []BinOp{{User: user, Start: live.AlignStart(at), Value: v}}}
		enc := m.AppendBinary(nil)
		dec, err := DecodeMutation(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		replayed.IngestBatch(dec.Records("s"))
	}
	a, b := live.Records("s"), replayed.Records("s")
	if len(a) != len(b) {
		t.Fatalf("record count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].User != b[i].User || !a[i].IntervalStart.Equal(b[i].IntervalStart) ||
			math.Float64bits(a[i].CoreSeconds) != math.Float64bits(b[i].CoreSeconds) {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
