package usage

// Durable mutation records. Every write that changes a site's usage state —
// a single job report, a group-committed batch ingest, a peer-exchange bin
// replacement, a policy edit — is describable as one Mutation, and replaying
// a mutation sequence in order reproduces the histogram state bitwise: the
// bin operations carry the exact float64 values and the exact apply order
// the live path used, and float addition is applied per (user, bin) in the
// same sequence. The binary encoding is versioned so log files written by an
// older build stay readable.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"time"
)

// MutationKind enumerates the durable usage-state mutations.
type MutationKind uint8

// Mutation kinds. Values are part of the on-disk format — append only.
const (
	// MutLocalAdd accumulates ops into the local histogram (a single job
	// report; Add semantics).
	MutLocalAdd MutationKind = 1
	// MutLocalBatch accumulates a batch of ops into the local histogram as
	// one group-committed record (IngestBatch semantics).
	MutLocalBatch MutationKind = 2
	// MutRemoteSet replaces bins in the remote histogram of peer Site
	// (SetRecords semantics) and advances that peer's watermark.
	MutRemoteSet MutationKind = 3
	// MutPolicy replaces the policy tree; Blob carries the policy JSON
	// (float64 shares survive a JSON round-trip bit-exactly).
	MutPolicy MutationKind = 4
)

// mutationVersion is the current encoding version byte.
const mutationVersion = 1

// BinOp is one (user, bin, value) cell of a mutation. Start is the
// width-aligned bin start in unix seconds — aligned at commit time, so
// replay's re-flooring is the identity and the op lands in the same bin.
type BinOp struct {
	User  string
	Start int64
	Value float64
}

// Mutation is one replayable usage-state change.
type Mutation struct {
	Kind MutationKind
	// Site is the peer site of a MutRemoteSet ("" otherwise).
	Site string
	// Ops are the bin operations (add or set, per Kind).
	Ops []BinOp
	// Watermark is the peer watermark after a MutRemoteSet, in unix
	// nanoseconds (0 otherwise).
	Watermark int64
	// Blob is the policy JSON of a MutPolicy (nil otherwise).
	Blob []byte
}

// Records converts the mutation's ops into exchange records attributed to
// site — the bridge back into the histogram batch primitives on replay.
func (m *Mutation) Records(site string) []Record {
	out := make([]Record, len(m.Ops))
	for i, op := range m.Ops {
		out[i] = Record{
			User:          op.User,
			Site:          site,
			IntervalStart: time.Unix(op.Start, 0).UTC(),
			CoreSeconds:   op.Value,
		}
	}
	return out
}

// EncodedSize returns an upper bound on AppendBinary's output size, so
// callers can reserve the buffer in one allocation. Varints are bounded at
// 10 bytes each.
func (m *Mutation) EncodedSize() int {
	n := 2 + 10 + len(m.Site) + 10 + 10 + 10 + len(m.Blob)
	for i := range m.Ops {
		n += 10 + 10 + len(m.Ops[i].User) + 10 + 10
	}
	return n
}

// AppendBinary appends the versioned binary encoding of m to dst and
// returns the extended slice.
//
// The op stream is compressed against its own locality — WAL fsync cost is
// bandwidth-bound for large batches, so bytes on the wire are the durable
// ingest overhead. Three op-level encodings exploit what accounting streams
// look like:
//
//   - user names share long prefixes with their neighbours (user0001,
//     user0002, ...): each op stores the common-prefix length with the
//     previous op's user plus the remaining suffix;
//   - bin starts cluster in time: starts are zigzag deltas against the
//     previous op (first op against zero);
//   - core-second values come from duration*procs arithmetic and carry
//     mostly-zero low mantissa bytes: the float bits are byte-reversed and
//     uvarint-encoded, so round values take 3-5 bytes instead of 8 (a
//     full-entropy float costs 10 — rare in practice).
//
// The encoding is canonical: re-encoding a decoded mutation reproduces the
// input bytes exactly.
func (m *Mutation) AppendBinary(dst []byte) []byte {
	dst = append(dst, mutationVersion, byte(m.Kind))
	dst = appendString(dst, m.Site)
	dst = binary.AppendUvarint(dst, uint64(len(m.Ops)))
	prevUser := ""
	prevStart := int64(0)
	for _, op := range m.Ops {
		p := commonPrefix(prevUser, op.User)
		dst = binary.AppendUvarint(dst, uint64(p))
		dst = appendString(dst, op.User[p:])
		dst = binary.AppendVarint(dst, op.Start-prevStart)
		dst = binary.AppendUvarint(dst, bits.ReverseBytes64(math.Float64bits(op.Value)))
		prevUser, prevStart = op.User, op.Start
	}
	dst = binary.AppendVarint(dst, m.Watermark)
	dst = binary.AppendUvarint(dst, uint64(len(m.Blob)))
	dst = append(dst, m.Blob...)
	return dst
}

func commonPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// DecodeMutation decodes one mutation encoded by AppendBinary. The whole
// input must be consumed — trailing garbage is an encoding error.
func DecodeMutation(b []byte) (*Mutation, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("usage: mutation record too short (%d bytes)", len(b))
	}
	if b[0] != mutationVersion {
		return nil, fmt.Errorf("usage: unsupported mutation version %d", b[0])
	}
	m := &Mutation{Kind: MutationKind(b[1])}
	if m.Kind < MutLocalAdd || m.Kind > MutPolicy {
		return nil, fmt.Errorf("usage: unknown mutation kind %d", b[1])
	}
	b = b[2:]
	var err error
	if m.Site, b, err = readString(b); err != nil {
		return nil, err
	}
	nOps, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	if nOps > uint64(len(b)) { // each op is >= 10 bytes; cheap sanity bound
		return nil, fmt.Errorf("usage: mutation claims %d ops in %d bytes", nOps, len(b))
	}
	m.Ops = make([]BinOp, nOps)
	prevUser := ""
	prevStart := int64(0)
	for i := range m.Ops {
		p, rest, err := readUvarint(b)
		if err != nil {
			return nil, err
		}
		if p > uint64(len(prevUser)) {
			return nil, fmt.Errorf("usage: mutation op %d claims %d-byte prefix of %d-byte user", i, p, len(prevUser))
		}
		suffix, rest, err := readString(rest)
		if err != nil {
			return nil, err
		}
		m.Ops[i].User = prevUser[:p] + suffix
		delta, rest, err := readVarint(rest)
		if err != nil {
			return nil, err
		}
		m.Ops[i].Start = prevStart + delta
		vbits, rest, err := readUvarint(rest)
		if err != nil {
			return nil, err
		}
		m.Ops[i].Value = math.Float64frombits(bits.ReverseBytes64(vbits))
		b = rest
		prevUser, prevStart = m.Ops[i].User, m.Ops[i].Start
	}
	if m.Watermark, b, err = readVarint(b); err != nil {
		return nil, err
	}
	nBlob, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	if nBlob > uint64(len(b)) {
		return nil, fmt.Errorf("usage: mutation claims %d blob bytes in %d", nBlob, len(b))
	}
	if nBlob > 0 {
		m.Blob = append([]byte(nil), b[:nBlob]...)
	}
	b = b[nBlob:]
	if len(b) != 0 {
		return nil, fmt.Errorf("usage: %d trailing bytes after mutation", len(b))
	}
	return m, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("usage: truncated mutation string (%d of %d bytes)", len(rest), n)
	}
	return string(rest[:n]), rest[n:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("usage: truncated mutation varint")
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("usage: truncated mutation varint")
	}
	return v, b[n:], nil
}
