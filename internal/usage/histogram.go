package usage

import (
	"sort"
	"sync"
	"time"
)

// Record is the compact inter-site exchange unit: the combined usage of one
// user at one site over one histogram interval.
type Record struct {
	// User is the grid user identity.
	User string `json:"user"`
	// Site is the reporting site.
	Site string `json:"site"`
	// IntervalStart is the start of the histogram bin.
	IntervalStart time.Time `json:"intervalStart"`
	// CoreSeconds is the combined usage in the interval.
	CoreSeconds float64 `json:"coreSeconds"`
}

// numStripes is the lock-striping factor. Mutations touch exactly one
// stripe (a user's bins always live in one stripe), so up to numStripes
// writers proceed in parallel; whole-histogram reads acquire every stripe
// in index order for a read-consistent view.
const numStripes = 64

// bin is one (interval start, core-seconds) cell of a user's histogram.
type bin struct {
	start int64 // bin start, unix seconds, width-aligned
	v     float64
}

// userBins is one user's accounting state. It lives inside a stripe and is
// guarded by that stripe's lock.
type userBins struct {
	// bins is sorted ascending by start. Usage arrives roughly in time
	// order, so inserts are append-mostly; out-of-order inserts shift.
	bins []bin
	// total is the running undecayed sum — Total() in O(1).
	total float64
	// exp is per-tracker incremental decayed state, index-aligned with
	// Histogram.trackers (see incremental.go).
	exp []expState
}

// lastStart returns the newest bin start (only valid when bins is non-empty).
func (u *userBins) lastStart() int64 { return u.bins[len(u.bins)-1].start }

// recomputeTotal re-sums the bins in sorted order, resetting any drift the
// running total may have picked up.
func (u *userBins) recomputeTotal() {
	var sum float64
	for _, b := range u.bins {
		sum += b.v
	}
	u.total = sum
}

// stripe is one lock shard: a mutex plus the users hashed onto it.
type stripe struct {
	mu    sync.RWMutex
	users map[string]*userBins
}

// Histogram accumulates per-user usage into fixed-width time bins. It is
// safe for concurrent use — local resource managers report job completions
// while the UMS reads totals.
//
// Internally the histogram is striped: users hash onto numStripes shards,
// each a map of per-user sorted bin slices. Point mutations (Add, SetBin)
// take one stripe lock; batch mutations (IngestBatch, SetRecords, Merge)
// take each stripe once per batch; whole-histogram reads (Users, Records,
// RecordsSince, DecayedTotals/AccumulateDecayed) acquire every stripe in
// index order, so they observe a state that existed at one single instant.
type Histogram struct {
	binWidth time.Duration
	half     time.Duration // binWidth/2: bin midpoint offset

	stripes [numStripes]stripe

	// trackers holds the registered incremental exponential-decay
	// accumulators. Locking protocol: written (and per-user exp state
	// resized) only while holding ALL stripe write locks; read while
	// holding any one stripe lock. genCounter orders tracker use for LRU
	// eviction and is only touched under all stripe write locks.
	trackers   []*expTracker
	genCounter uint64
}

// NewHistogram creates a histogram with the given bin width (the "per-user
// histograms for configurable time intervals" produced by the USS).
// Non-positive widths default to one hour.
func NewHistogram(binWidth time.Duration) *Histogram {
	if binWidth <= 0 {
		binWidth = time.Hour
	}
	h := &Histogram{binWidth: binWidth, half: binWidth / 2}
	for i := range h.stripes {
		h.stripes[i].users = map[string]*userBins{}
	}
	return h
}

// BinWidth returns the histogram's interval width.
func (h *Histogram) BinWidth() time.Duration { return h.binWidth }

func (h *Histogram) binStart(at time.Time) int64 {
	w := int64(h.binWidth / time.Second)
	if w <= 0 {
		w = 1
	}
	u := at.Unix()
	// Floor division handles pre-epoch times correctly.
	q := u / w
	if u%w < 0 {
		q--
	}
	return q * w
}

// AlignStart floors at to the containing bin's start, in unix seconds —
// the same alignment Add/SetBin apply internally. Durable mutation records
// store pre-aligned starts so replay lands each op in the identical bin.
func (h *Histogram) AlignStart(at time.Time) int64 {
	return h.binStart(at)
}

// midTime returns the midpoint of the bin starting at start — decay ages
// are measured from bin midpoints so freshly written bins are not over- or
// under-weighted.
func (h *Histogram) midTime(start int64) time.Time {
	return time.Unix(start, 0).Add(h.half)
}

// fnv-1a over the user name selects the stripe.
func stripeIndex(user string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var x uint64 = offset64
	for i := 0; i < len(user); i++ {
		x ^= uint64(user[i])
		x *= prime64
	}
	return int(x % numStripes)
}

func (h *Histogram) stripeFor(user string) *stripe {
	return &h.stripes[stripeIndex(user)]
}

// lockAll / unlockAll acquire and release every stripe write lock in index
// order (the canonical order prevents deadlock against other whole-
// histogram passes).
func (h *Histogram) lockAll() {
	for i := range h.stripes {
		h.stripes[i].mu.Lock()
	}
}

func (h *Histogram) unlockAll() {
	for i := range h.stripes {
		h.stripes[i].mu.Unlock()
	}
}

func (h *Histogram) rlockAll() {
	for i := range h.stripes {
		h.stripes[i].mu.RLock()
	}
}

func (h *Histogram) runlockAll() {
	for i := range h.stripes {
		h.stripes[i].mu.RUnlock()
	}
}

// userLocked returns user's state in st, creating it when create is set.
// st's write lock must be held.
func (h *Histogram) userLocked(st *stripe, user string, create bool) *userBins {
	u := st.users[user]
	if u == nil && create {
		u = &userBins{exp: make([]expState, len(h.trackers))}
		st.users[user] = u
	}
	return u
}

// findBin locates start in u.bins: it returns the index where start is or
// would be inserted, and whether it is present.
func (u *userBins) findBin(start int64) (int, bool) {
	n := len(u.bins)
	// Append-mostly fast path: new bin at or past the end.
	if n == 0 || start > u.bins[n-1].start {
		return n, false
	}
	if start == u.bins[n-1].start {
		return n - 1, true
	}
	i := sort.Search(n, func(i int) bool { return u.bins[i].start >= start })
	return i, i < n && u.bins[i].start == start
}

// addBinLocked accumulates v into user's bin at start. The stripe's write
// lock must be held. v must be positive.
func (h *Histogram) addBinLocked(st *stripe, user string, start int64, v float64) {
	u := h.userLocked(st, user, true)
	i, ok := u.findBin(start)
	if ok {
		u.bins[i].v += v
	} else {
		u.bins = append(u.bins, bin{})
		copy(u.bins[i+1:], u.bins[i:])
		u.bins[i] = bin{start, v}
	}
	u.total += v
	h.trackersAdd(u, start, v)
}

// setBinLocked replaces user's bin at start with v (≤0 removes the bin).
// The stripe's write lock must be held.
func (h *Histogram) setBinLocked(st *stripe, user string, start int64, v float64) {
	u := h.userLocked(st, user, v > 0)
	if u == nil {
		return
	}
	i, ok := u.findBin(start)
	if v <= 0 {
		if !ok {
			return
		}
		old := u.bins[i].v
		u.bins = append(u.bins[:i], u.bins[i+1:]...)
		u.recomputeTotal()
		h.trackersAdd(u, start, -old)
		if len(u.bins) == 0 {
			delete(st.users, user)
		}
		return
	}
	if ok {
		delta := v - u.bins[i].v
		u.bins[i].v = v
		if delta >= 0 {
			u.total += delta
		} else {
			// Shrinking overwrites re-sum the bins: the running total
			// never accumulates cancellation drift.
			u.recomputeTotal()
		}
		h.trackersAdd(u, start, delta)
		return
	}
	u.bins = append(u.bins, bin{})
	copy(u.bins[i+1:], u.bins[i:])
	u.bins[i] = bin{start, v}
	u.total += v
	h.trackersAdd(u, start, v)
}

// Add accumulates coreSeconds of usage for user at the bin containing `at`.
func (h *Histogram) Add(user string, at time.Time, coreSeconds float64) {
	if coreSeconds <= 0 || user == "" {
		return
	}
	st := h.stripeFor(user)
	start := h.binStart(at)
	st.mu.Lock()
	h.addBinLocked(st, user, start, coreSeconds)
	st.mu.Unlock()
}

// AddSpread distributes a job's usage across the bins it executed in — a job
// running from start for dur at procs cores contributes proportionally to
// each overlapped interval. The whole spread is applied under one stripe
// acquisition, so readers see either none or all of the job's usage.
func (h *Histogram) AddSpread(user string, start time.Time, dur time.Duration, procs int) {
	if dur <= 0 || user == "" {
		return
	}
	if procs < 1 {
		procs = 1
	}
	// Pre-compute the per-bin slices outside the lock. Slices come out in
	// ascending bin order, so the locked phase is append-mostly.
	var spans []bin
	end := start.Add(dur)
	cur := start
	for cur.Before(end) {
		bs := h.binStart(cur)
		binEnd := time.Unix(bs, 0).UTC().Add(h.binWidth)
		sliceEnd := end
		if binEnd.Before(sliceEnd) {
			sliceEnd = binEnd
		}
		if v := sliceEnd.Sub(cur).Seconds() * float64(procs); v > 0 {
			spans = append(spans, bin{bs, v})
		}
		cur = sliceEnd
	}
	if len(spans) == 0 {
		return
	}
	st := h.stripeFor(user)
	st.mu.Lock()
	for _, s := range spans {
		h.addBinLocked(st, user, s.start, s.v)
	}
	st.mu.Unlock()
}

// SetBin replaces the value of user's bin starting at binStart (the bin
// containing binStart). A non-positive value removes the bin. This is the
// ingestion primitive for incremental inter-site exchange, where a re-fetched
// interval must overwrite rather than accumulate.
func (h *Histogram) SetBin(user string, binStart time.Time, v float64) {
	if user == "" {
		return
	}
	st := h.stripeFor(user)
	start := h.binStart(binStart)
	st.mu.Lock()
	h.setBinLocked(st, user, start, v)
	st.mu.Unlock()
}

// batchByStripe groups records by target stripe so a batch touches each
// stripe lock at most once.
func batchByStripe(records []Record) [numStripes][]Record {
	var by [numStripes][]Record
	for _, r := range records {
		if r.User == "" {
			continue
		}
		i := stripeIndex(r.User)
		by[i] = append(by[i], r)
	}
	return by
}

// IngestBatch accumulates a batch of exchange records with one lock
// acquisition per touched stripe. Records with an empty user or
// non-positive usage are skipped, matching Add.
func (h *Histogram) IngestBatch(records []Record) {
	if len(records) == 0 {
		return
	}
	by := batchByStripe(records)
	for i := range by {
		if len(by[i]) == 0 {
			continue
		}
		st := &h.stripes[i]
		st.mu.Lock()
		for _, r := range by[i] {
			if r.CoreSeconds <= 0 {
				continue
			}
			h.addBinLocked(st, r.User, h.binStart(r.IntervalStart), r.CoreSeconds)
		}
		st.mu.Unlock()
	}
}

// SetRecords replaces the bins named by a batch of exchange records
// (SetBin semantics) with one lock acquisition per touched stripe — the
// bulk primitive of the incremental inter-site exchange, where a re-fetched
// interval overwrites rather than accumulates. All records of one user land
// atomically with respect to whole-histogram readers.
func (h *Histogram) SetRecords(records []Record) {
	if len(records) == 0 {
		return
	}
	by := batchByStripe(records)
	for i := range by {
		if len(by[i]) == 0 {
			continue
		}
		st := &h.stripes[i]
		st.mu.Lock()
		for _, r := range by[i] {
			h.setBinLocked(st, r.User, h.binStart(r.IntervalStart), r.CoreSeconds)
		}
		st.mu.Unlock()
	}
}

// Users returns the sorted user names with recorded usage.
func (h *Histogram) Users() []string {
	h.rlockAll()
	var out []string
	for i := range h.stripes {
		for u := range h.stripes[i].users {
			out = append(out, u)
		}
	}
	h.runlockAll()
	sort.Strings(out)
	return out
}

// Total returns the undecayed total usage of user — O(1), served from the
// user's running sum.
func (h *Histogram) Total(user string) float64 {
	st := h.stripeFor(user)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if u := st.users[user]; u != nil {
		return u.total
	}
	return 0
}

// DecayedTotal returns user's usage with each bin weighted by its age at
// `now` under the given decay function. Bin age is measured from the bin
// midpoint so freshly written bins are not over- or under-weighted.
func (h *Histogram) DecayedTotal(user string, now time.Time, d Decay) float64 {
	if d == nil {
		d = None{}
	}
	st := h.stripeFor(user)
	st.mu.RLock()
	defer st.mu.RUnlock()
	u := st.users[user]
	if u == nil {
		return 0
	}
	// Bins are kept sorted, so summing in slice order reproduces the
	// deterministic key-ordered float sums of the map-based implementation.
	var sum float64
	for _, b := range u.bins {
		age := now.Sub(h.midTime(b.start))
		if age < 0 {
			age = 0
		}
		sum += b.v * d.Weight(age)
	}
	return sum
}

// DecayedTotals returns the decayed totals for every user, computed in one
// read-consistent pass (all stripes held for the duration, so the result is
// a view that existed at a single instant). Exponential decay is served
// from the O(users) incremental accumulators; step decay binary-searches
// the window edge; other decays share one memoized weight table across all
// users. See AccumulateDecayed for combining several histograms.
func (h *Histogram) DecayedTotals(now time.Time, d Decay) map[string]float64 {
	// Pre-size to the current user count: at scale, growing the result map
	// incrementally costs more than the weighted sums themselves.
	out := make(map[string]float64, h.userCount())
	h.AccumulateDecayed(out, now, d, nil)
	return out
}

// userCount returns the number of users with recorded usage. Stripes are
// sampled one lock at a time — callers use it only as a sizing hint.
func (h *Histogram) userCount() int {
	n := 0
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		n += len(st.users)
		st.mu.RUnlock()
	}
	return n
}

// AccumulateDecayed adds every user's decayed total at `now` into dst —
// the one-pass merge primitive for combining local and remote histograms
// without intermediate maps. A non-nil WeightTable built for the same
// (decay, now, bin width) is shared across calls, so one weight per
// distinct bin start serves all users of all histograms; a nil or
// mismatched table falls back to a private one.
func (h *Histogram) AccumulateDecayed(dst map[string]float64, now time.Time, d Decay, wt *WeightTable) {
	if d == nil {
		d = None{}
	}
	switch dd := d.(type) {
	case None:
		h.rlockAll()
		h.accumPlain(dst)
		h.runlockAll()
	case ExponentialHalfLife:
		if dd.HalfLife <= 0 {
			h.rlockAll()
			h.accumPlain(dst)
			h.runlockAll()
			return
		}
		// Write locks: the pass may register a tracker, rebase its
		// reference instant, or persist recomputed per-user sums.
		h.lockAll()
		h.accumExp(dst, now, dd)
		h.unlockAll()
	case Step:
		if dd.Window <= 0 {
			// Degenerate window: Step.Weight is 1 everywhere.
			h.rlockAll()
			h.accumPlain(dst)
			h.runlockAll()
			return
		}
		h.rlockAll()
		h.accumStep(dst, now, dd)
		h.runlockAll()
	default:
		h.rlockAll()
		h.accumTable(dst, now, d, wt)
		h.runlockAll()
	}
}

// accumPlain adds undecayed totals by summing each user's bins in sorted
// order — bit-identical to the naive weight-1 per-bin sum (Total() serves
// the O(1) running sum instead; this pass is already O(total bins) cheap
// with no weight evaluations). Any stripe lock held.
func (h *Histogram) accumPlain(dst map[string]float64) {
	for i := range h.stripes {
		for name, u := range h.stripes[i].users {
			var sum float64
			for _, b := range u.bins {
				sum += b.v
			}
			dst[name] += sum
		}
	}
}

// accumStep adds sliding-window totals: a bin counts fully iff its midpoint
// age is within the window (future bins clamp to age zero, hence count).
// The window edge is found by binary search in each user's sorted bins.
func (h *Histogram) accumStep(dst map[string]float64, now time.Time, d Step) {
	edge := now.Add(-d.Window) // bins with midpoint >= edge count
	for i := range h.stripes {
		for name, u := range h.stripes[i].users {
			bins := u.bins
			j := sort.Search(len(bins), func(k int) bool {
				return !h.midTime(bins[k].start).Before(edge)
			})
			var sum float64
			for _, b := range bins[j:] {
				sum += b.v
			}
			// Users fully outside the window still get an entry (+= 0),
			// matching the per-user passes of the other decay paths.
			dst[name] += sum
		}
	}
}

// accumTable adds decayed totals using a memoized per-bin-start weight
// table: bins are width-aligned, so the distinct bin starts are few and one
// small table serves every user (and, via the shared wt, every histogram of
// a combining pass) — no per-user sorting, one Weight call per distinct bin.
func (h *Histogram) accumTable(dst map[string]float64, now time.Time, d Decay, wt *WeightTable) {
	if wt == nil || !wt.matches(d, now, h.binWidth) {
		wt = NewWeightTable(d, now, h.binWidth)
	}
	for i := range h.stripes {
		for name, u := range h.stripes[i].users {
			var sum float64
			for _, b := range u.bins {
				sum += b.v * wt.Weight(b.start)
			}
			dst[name] += sum
		}
	}
}

// Records exports the histogram as compact exchange records for the given
// site, sorted by user then interval. The export is read-consistent: all
// stripes are held while it is assembled.
func (h *Histogram) Records(site string) []Record {
	h.rlockAll()
	defer h.runlockAll()
	type uref struct {
		name string
		u    *userBins
	}
	var users []uref
	total := 0
	for i := range h.stripes {
		for name, u := range h.stripes[i].users {
			users = append(users, uref{name, u})
			total += len(u.bins)
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i].name < users[j].name })
	out := make([]Record, 0, total)
	for _, ur := range users {
		for _, b := range ur.u.bins {
			out = append(out, Record{
				User:          ur.name,
				Site:          site,
				IntervalStart: time.Unix(b.start, 0).UTC(),
				CoreSeconds:   b.v,
			})
		}
	}
	return out
}

// NumStripes reports the lock-striping factor — the valid range of
// StripeRecords indices.
func (h *Histogram) NumStripes() int { return numStripes }

// StripeRecords exports one stripe's bins as exchange records, sorted by
// user then interval, holding only that stripe's lock. Snapshot writers
// iterate stripes one at a time so whole-histogram readers never stall
// behind the export.
func (h *Histogram) StripeRecords(site string, i int) []Record {
	st := &h.stripes[i]
	st.mu.RLock()
	defer st.mu.RUnlock()
	type uref struct {
		name string
		u    *userBins
	}
	users := make([]uref, 0, len(st.users))
	total := 0
	for name, u := range st.users {
		users = append(users, uref{name, u})
		total += len(u.bins)
	}
	sort.Slice(users, func(i, j int) bool { return users[i].name < users[j].name })
	out := make([]Record, 0, total)
	for _, ur := range users {
		for _, b := range ur.u.bins {
			out = append(out, Record{
				User:          ur.name,
				Site:          site,
				IntervalStart: time.Unix(b.start, 0).UTC(),
				CoreSeconds:   b.v,
			})
		}
	}
	return out
}

// RecordsSince exports only records whose interval starts at or after t —
// the incremental exchange between USS instances. Each user's tail is found
// by binary search in its sorted bins, and users whose newest bin predates
// t are skipped with one comparison, so the cost scales with the number of
// users plus the exported tail, not with total histogram size.
func (h *Histogram) RecordsSince(site string, t time.Time) []Record {
	h.rlockAll()
	defer h.runlockAll()
	type uref struct {
		name string
		u    *userBins
		from int
	}
	var users []uref
	total := 0
	for i := range h.stripes {
		for name, u := range h.stripes[i].users {
			if len(u.bins) == 0 || time.Unix(u.lastStart(), 0).Before(t) {
				continue // newest bin predates t: nothing to export
			}
			bins := u.bins
			j := sort.Search(len(bins), func(k int) bool {
				return !time.Unix(bins[k].start, 0).Before(t)
			})
			if j == len(bins) {
				continue
			}
			users = append(users, uref{name, u, j})
			total += len(bins) - j
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i].name < users[j].name })
	out := make([]Record, 0, total)
	for _, ur := range users {
		for _, b := range ur.u.bins[ur.from:] {
			out = append(out, Record{
				User:          ur.name,
				Site:          site,
				IntervalStart: time.Unix(b.start, 0).UTC(),
				CoreSeconds:   b.v,
			})
		}
	}
	return out
}

// Ingest merges exchange records into the histogram (used when a site folds
// remote usage into its global view). Records land in the bin containing
// their interval start.
func (h *Histogram) Ingest(records []Record) {
	h.IngestBatch(records)
}

// Merge folds other's bins into h. When the bin widths match (the common
// case — Clone, and sites exchanging at one configured width), each of
// other's stripes maps onto the same stripe of h, so the merge runs as one
// sorted bin-slice merge per stripe pair with a single lock acquisition on
// each side and no intermediate cell records. Mismatched widths re-bin
// through the batch-ingest path.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if other.binWidth == h.binWidth {
		for i := range other.stripes {
			src := &other.stripes[i]
			src.mu.RLock()
			type uc struct {
				name string
				bins []bin
			}
			cells := make([]uc, 0, len(src.users))
			for name, u := range src.users {
				cells = append(cells, uc{name, append([]bin(nil), u.bins...)})
			}
			src.mu.RUnlock()
			if len(cells) == 0 {
				continue
			}
			dst := &h.stripes[i]
			dst.mu.Lock()
			for _, c := range cells {
				for _, b := range c.bins {
					h.addBinLocked(dst, c.name, b.start, b.v)
				}
			}
			dst.mu.Unlock()
		}
		return
	}
	// Differing widths: export and re-bin (rare; batch path keeps lock
	// churn at one acquisition per stripe).
	h.IngestBatch(other.Records(""))
}

// Clone returns a deep copy. Incremental decay trackers are not copied;
// the clone re-registers them lazily on its first exponential totals pass.
func (h *Histogram) Clone() *Histogram {
	out := NewHistogram(h.binWidth)
	out.Merge(h)
	return out
}
