package usage

import (
	"sort"
	"sync"
	"time"
)

// Record is the compact inter-site exchange unit: the combined usage of one
// user at one site over one histogram interval.
type Record struct {
	// User is the grid user identity.
	User string `json:"user"`
	// Site is the reporting site.
	Site string `json:"site"`
	// IntervalStart is the start of the histogram bin.
	IntervalStart time.Time `json:"intervalStart"`
	// CoreSeconds is the combined usage in the interval.
	CoreSeconds float64 `json:"coreSeconds"`
}

// Histogram accumulates per-user usage into fixed-width time bins. It is
// safe for concurrent use — local resource managers report job completions
// while the UMS reads totals.
type Histogram struct {
	mu       sync.RWMutex
	binWidth time.Duration
	// bins[user][binStartUnix] = core-seconds
	bins map[string]map[int64]float64
}

// NewHistogram creates a histogram with the given bin width (the "per-user
// histograms for configurable time intervals" produced by the USS).
// Non-positive widths default to one hour.
func NewHistogram(binWidth time.Duration) *Histogram {
	if binWidth <= 0 {
		binWidth = time.Hour
	}
	return &Histogram{
		binWidth: binWidth,
		bins:     map[string]map[int64]float64{},
	}
}

// BinWidth returns the histogram's interval width.
func (h *Histogram) BinWidth() time.Duration { return h.binWidth }

func (h *Histogram) binStart(at time.Time) int64 {
	w := int64(h.binWidth / time.Second)
	if w <= 0 {
		w = 1
	}
	u := at.Unix()
	// Floor division handles pre-epoch times correctly.
	q := u / w
	if u%w < 0 {
		q--
	}
	return q * w
}

// Add accumulates coreSeconds of usage for user at the bin containing `at`.
func (h *Histogram) Add(user string, at time.Time, coreSeconds float64) {
	if coreSeconds <= 0 || user == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.bins[user]
	if m == nil {
		m = map[int64]float64{}
		h.bins[user] = m
	}
	m[h.binStart(at)] += coreSeconds
}

// AddSpread distributes a job's usage across the bins it executed in — a job
// running from start for dur at procs cores contributes proportionally to
// each overlapped interval.
func (h *Histogram) AddSpread(user string, start time.Time, dur time.Duration, procs int) {
	if dur <= 0 || user == "" {
		return
	}
	if procs < 1 {
		procs = 1
	}
	end := start.Add(dur)
	cur := start
	for cur.Before(end) {
		binStart := time.Unix(h.binStart(cur), 0).UTC()
		binEnd := binStart.Add(h.binWidth)
		sliceEnd := end
		if binEnd.Before(sliceEnd) {
			sliceEnd = binEnd
		}
		h.Add(user, cur, sliceEnd.Sub(cur).Seconds()*float64(procs))
		cur = sliceEnd
	}
}

// SetBin replaces the value of user's bin starting at binStart (the bin
// containing binStart). A non-positive value removes the bin. This is the
// ingestion primitive for incremental inter-site exchange, where a re-fetched
// interval must overwrite rather than accumulate.
func (h *Histogram) SetBin(user string, binStart time.Time, v float64) {
	if user == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	key := h.binStart(binStart)
	m := h.bins[user]
	if v <= 0 {
		if m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(h.bins, user)
			}
		}
		return
	}
	if m == nil {
		m = map[int64]float64{}
		h.bins[user] = m
	}
	m[key] = v
}

// Users returns the sorted user names with recorded usage.
func (h *Histogram) Users() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.bins))
	for u := range h.bins {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Total returns the undecayed total usage of user.
func (h *Histogram) Total(user string) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var sum float64
	for _, v := range h.bins[user] {
		sum += v
	}
	return sum
}

// DecayedTotal returns user's usage with each bin weighted by its age at
// `now` under the given decay function. Bin age is measured from the bin
// midpoint so freshly written bins are not over- or under-weighted.
func (h *Histogram) DecayedTotal(user string, now time.Time, d Decay) float64 {
	if d == nil {
		d = None{}
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	// Sum bins in key order so repeated runs produce bit-identical floats.
	bins := h.bins[user]
	keys := make([]int64, 0, len(bins))
	for start := range bins {
		keys = append(keys, start)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var sum float64
	half := h.binWidth / 2
	for _, start := range keys {
		mid := time.Unix(start, 0).Add(half)
		age := now.Sub(mid)
		if age < 0 {
			age = 0
		}
		sum += bins[start] * d.Weight(age)
	}
	return sum
}

// DecayedTotals returns the decayed totals for every user.
func (h *Histogram) DecayedTotals(now time.Time, d Decay) map[string]float64 {
	out := map[string]float64{}
	for _, u := range h.Users() {
		out[u] = h.DecayedTotal(u, now, d)
	}
	return out
}

// Records exports the histogram as compact exchange records for the given
// site, sorted by user then interval.
func (h *Histogram) Records(site string) []Record {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []Record
	for user, bins := range h.bins {
		for start, v := range bins {
			out = append(out, Record{
				User:          user,
				Site:          site,
				IntervalStart: time.Unix(start, 0).UTC(),
				CoreSeconds:   v,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].IntervalStart.Before(out[j].IntervalStart)
	})
	return out
}

// RecordsSince exports only records whose interval starts at or after t —
// the incremental exchange between USS instances.
func (h *Histogram) RecordsSince(site string, t time.Time) []Record {
	all := h.Records(site)
	out := all[:0]
	for _, r := range all {
		if !r.IntervalStart.Before(t) {
			out = append(out, r)
		}
	}
	return append([]Record(nil), out...)
}

// Ingest merges exchange records into the histogram (used when a site folds
// remote usage into its global view). Records land in the bin containing
// their interval start.
func (h *Histogram) Ingest(records []Record) {
	for _, r := range records {
		h.Add(r.User, r.IntervalStart, r.CoreSeconds)
	}
}

// Merge folds other's bins into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	other.mu.RLock()
	type cell struct {
		user  string
		start int64
		v     float64
	}
	var cells []cell
	for user, bins := range other.bins {
		for start, v := range bins {
			cells = append(cells, cell{user, start, v})
		}
	}
	other.mu.RUnlock()
	for _, c := range cells {
		h.Add(c.user, time.Unix(c.start, 0), c.v)
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := NewHistogram(h.binWidth)
	out.Merge(h)
	return out
}
