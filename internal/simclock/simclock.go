// Package simclock provides a clock abstraction so that the Aequus stack can
// run either against wall-clock time (live services) or against a simulated
// clock (testbed experiments). Virtualizing time is what lets the paper's
// six-hour, 43,200-job testbed runs complete in milliseconds while preserving
// queueing and ordering behaviour.
package simclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sim is a manually advanced simulated clock. The zero value starts at the
// zero time; use NewSim to choose an epoch.
type Sim struct {
	mu  sync.RWMutex
	now time.Time
}

// NewSim returns a simulated clock set to the given epoch.
func NewSim(epoch time.Time) *Sim {
	return &Sim{now: epoch}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d. Negative durations are ignored so a
// simulation can never travel backwards in time.
func (s *Sim) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// Set moves the clock to t if t is not before the current simulated time.
// It reports whether the clock was moved.
func (s *Sim) Set(t time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		return false
	}
	s.now = t
	return true
}
