package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowIsMonotonicEnough(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("Real clock went backwards: %v then %v", a, b)
	}
}

func TestSimStartsAtEpoch(t *testing.T) {
	epoch := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(epoch)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestSimAdvance(t *testing.T) {
	epoch := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(epoch)
	s.Advance(90 * time.Minute)
	want := epoch.Add(90 * time.Minute)
	if got := s.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimAdvanceNegativeIgnored(t *testing.T) {
	epoch := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(epoch)
	s.Advance(-time.Hour)
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("negative Advance moved clock to %v", got)
	}
}

func TestSimSet(t *testing.T) {
	epoch := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(epoch)
	later := epoch.Add(time.Hour)
	if !s.Set(later) {
		t.Fatal("Set to a later time should succeed")
	}
	if got := s.Now(); !got.Equal(later) {
		t.Fatalf("Now() = %v, want %v", got, later)
	}
	if s.Set(epoch) {
		t.Fatal("Set to an earlier time should fail")
	}
	if got := s.Now(); !got.Equal(later) {
		t.Fatalf("failed Set moved clock to %v", got)
	}
}

func TestSimSetSameTime(t *testing.T) {
	epoch := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(epoch)
	if !s.Set(epoch) {
		t.Fatal("Set to the current time should succeed (not-before semantics)")
	}
}

func TestSimConcurrentAdvance(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	const workers = 8
	const steps = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				s.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).Add(workers * steps * time.Millisecond)
	if got := s.Now(); !got.Equal(want) {
		t.Fatalf("after concurrent advances Now() = %v, want %v", got, want)
	}
}
