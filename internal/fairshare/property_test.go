package fairshare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/policy"
)

// randomScenario builds a flat policy + usage from fuzz inputs.
func randomScenario(shares, usages []uint16) (*policy.Tree, map[string]float64, []string, bool) {
	n := len(shares)
	if n == 0 || n > 12 || len(usages) < n {
		return nil, nil, nil, false
	}
	p := policy.NewTree()
	usage := map[string]float64{}
	users := make([]string, n)
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		users[i] = name
		if _, err := p.Add("", name, float64(shares[i]%1000)+1); err != nil {
			return nil, nil, nil, false
		}
		usage[name] = float64(usages[i] % 10000)
	}
	return p, usage, users, true
}

func TestPropertyPrioritiesBounded(t *testing.T) {
	f := func(shares, usages []uint16, kRaw uint8) bool {
		p, usage, users, ok := randomScenario(shares, usages)
		if !ok {
			return true
		}
		k := float64(kRaw%101) / 100
		ft := Compute(p, usage, Config{DistanceWeight: k, Resolution: 10000})
		for _, u := range users {
			pr, found := ft.LeafPriority(u)
			if !found {
				return false
			}
			if pr < -1-1e-9 || pr > 1+1e-9 || math.IsNaN(pr) {
				return false
			}
			v, _ := ft.Vector(u)
			for _, e := range v {
				if e < 0 || e >= 10000 || math.IsNaN(e) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBalanceAtProportionalUsage(t *testing.T) {
	// When every user's usage is exactly proportional to its share, all
	// values sit at the balance point regardless of k.
	f := func(shares []uint16, scaleRaw uint16, kRaw uint8) bool {
		n := len(shares)
		if n == 0 || n > 10 {
			return true
		}
		p := policy.NewTree()
		usage := map[string]float64{}
		scale := float64(scaleRaw%1000) + 1
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			s := float64(shares[i]%1000) + 1
			if _, err := p.Add("", name, s); err != nil {
				return true
			}
			usage[name] = s * scale
		}
		k := float64(kRaw%101) / 100
		ft := Compute(p, usage, Config{DistanceWeight: k, Resolution: 10000})
		for i := 0; i < n; i++ {
			pr, _ := ft.LeafPriority(string(rune('a' + i)))
			if math.Abs(pr) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMonotoneInOwnUsage(t *testing.T) {
	// Increasing a user's usage (others fixed) never increases its own
	// priority.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		p := policy.NewTree()
		n := 2 + rng.Intn(6)
		usage := map[string]float64{}
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			p.Add("", name, rng.Float64()*10+0.1)
			usage[name] = rng.Float64() * 1000
		}
		cfg := Config{DistanceWeight: rng.Float64(), Resolution: 10000}
		before := Compute(p, usage, cfg)
		pb, _ := before.LeafPriority("a")
		usage["a"] += rng.Float64()*500 + 1
		after := Compute(p, usage, cfg)
		pa, _ := after.LeafPriority("a")
		if pa > pb+1e-9 {
			t.Fatalf("trial %d: priority rose from %g to %g after more usage", trial, pb, pa)
		}
	}
}

func TestPropertyZeroSumOfAbsoluteDistances(t *testing.T) {
	// With k=0 (pure absolute distance) the priorities of a sibling group
	// sum to zero: Σ(share_i − usageShare_i) = 1 − 1 = 0.
	f := func(shares, usages []uint16) bool {
		p, usage, users, ok := randomScenario(shares, usages)
		if !ok {
			return true
		}
		var totalUsage float64
		for _, v := range usage {
			totalUsage += v
		}
		if totalUsage == 0 {
			return true // degenerate: all priorities positive by design
		}
		ft := Compute(p, usage, Config{DistanceWeight: 0, Resolution: 10000})
		var sum float64
		for _, u := range users {
			pr, _ := ft.LeafPriority(u)
			sum += pr
		}
		return math.Abs(sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVectorOrderConsistentWithPriority(t *testing.T) {
	// In a flat tree, vector comparison order must equal leaf priority
	// order.
	f := func(shares, usages []uint16) bool {
		p, usage, users, ok := randomScenario(shares, usages)
		if !ok || len(users) < 2 {
			return true
		}
		ft := Compute(p, usage, DefaultConfig())
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				vi, _ := ft.Vector(users[i])
				vj, _ := ft.Vector(users[j])
				pi, _ := ft.LeafPriority(users[i])
				pj, _ := ft.LeafPriority(users[j])
				cmp := vi.Compare(vj, ft.Config.Balance())
				switch {
				case pi > pj+1e-12 && cmp != 1:
					return false
				case pj > pi+1e-12 && cmp != -1:
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
