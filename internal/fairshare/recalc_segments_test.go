package fairshare

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/policy"
)

// TestViewMatchesAt pins the prefix-interning invariant: composing an
// entry's View (interned head ⊕ segment tail) must reproduce the exact
// full-depth slices At() serves, bitwise, over random trees and after
// incremental Applies.
func TestViewMatchesAt(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, leaves := randomPolicy(rng)
		usage := map[string]float64{}
		for _, u := range leaves {
			usage[u] = rng.Float64() * 1000
		}
		cfg := DefaultConfig()
		tree := Compute(p, usage, cfg)
		ix := NewIndex(tree)
		eng := NewRecalc(tree, ix)
		// Also check an incrementally derived index, whose clean segments
		// are pointer-shared with the previous snapshot's.
		_, ix2, _, err := eng.Apply(map[string]float64{leaves[0]: 1234.5})
		if err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
		for _, index := range []*Index{ix, ix2} {
			for i := 0; i < index.Len(); i++ {
				at := index.At(i)
				v := index.View(i)
				if v.User != at.User {
					t.Fatalf("seed %d entry %d: View user %q, At user %q", seed, i, v.User, at.User)
				}
				if math.Float64bits(v.LeafPriority) != math.Float64bits(at.LeafPriority) {
					t.Fatalf("seed %d entry %d: View leaf priority %v, At %v", seed, i, v.LeafPriority, at.LeafPriority)
				}
				vec := append([]float64{v.HeadVec}, v.TailVec...)
				pu := append([]float64{v.HeadUsage}, v.TailUsage...)
				compareFloatSlices(t, "View Vec", vec, at.Vec)
				compareFloatSlices(t, "View PathUsage", pu, at.PathUsage)
				compareFloatSlices(t, "View PathShares", v.PathShares, at.PathShares)
			}
		}
	}
}

// TestRecalcSharesCleanSegmentTails verifies the segment-sharing claim at
// the index layer: after a single-user delta, every segment without a dirty
// leaf re-publishes its tail by pointer, and only the dirty segment's tail
// is a fresh arena.
func TestRecalcSharesCleanSegmentTails(t *testing.T) {
	p, usage := buildWide(6, 8)
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	_, gotIx, st, err := eng.Apply(map[string]float64{"u002_003": usage["u002_003"] + 7})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.MaterializedSegments != 1 || st.SharedSegments != 5 {
		t.Fatalf("segments materialized/shared = %d/%d, want 1/5", st.MaterializedSegments, st.SharedSegments)
	}
	shared, rebuilt := 0, 0
	for s := range gotIx.tails {
		if gotIx.tails[s] == ix.tails[s] {
			shared++
		} else {
			rebuilt++
		}
	}
	if shared != 5 || rebuilt != 1 {
		t.Fatalf("tail pointers shared/rebuilt = %d/%d, want 5/1", shared, rebuilt)
	}
	// The dirty segment is the one holding u002_003.
	pos, ok := gotIx.Pos("u002_003")
	if !ok {
		t.Fatal("dirty user missing from index")
	}
	if s := gotIx.segOf[pos]; gotIx.tails[s] == ix.tails[s] {
		t.Fatalf("dirty segment %d still shares its tail", s)
	}
}

// TestRecalcTopLevelLeafSegments covers the degenerate segment shape: users
// attached directly to the root form one-leaf segments with empty tails,
// and a root-group rescore must refresh their interned leaf priority even
// when their own usage never changed.
func TestRecalcTopLevelLeafSegments(t *testing.T) {
	p := policy.NewTree()
	if _, err := p.Add("", "solo", 2); err != nil { // top-level user leaf
		t.Fatal(err)
	}
	if _, err := p.Add("", "g", 3); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"a", "b"} {
		if _, err := p.Add("/g", u, 1); err != nil {
			t.Fatal(err)
		}
	}
	usage := map[string]float64{"solo": 10, "a": 5, "b": 20}
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	// Dirty a grouped user: the root denominator shifts, so solo's priority
	// changes without solo itself being dirty.
	for step, delta := range []map[string]float64{
		{"a": 500.0},
		{"solo": 123.0}, // dirty the top-level leaf itself
		{"solo": 0, "b": 1},
	} {
		for u, v := range delta {
			usage[u] = v
		}
		gotTree, gotIx, _, err := eng.Apply(delta)
		if err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		wantTree := Compute(p, usage, cfg)
		compareNodes(t, gotTree.Root, wantTree.Root, "")
		compareIndexes(t, gotIx, NewIndex(wantTree))
	}
}

// TestRecalcDetectsShapeCorruption is the phase-5 walk-failure regression
// test: when the engine's tree shape no longer matches the index layout
// (here: a leaf removed behind the engine's back), Apply must return an
// error instead of publishing a torn snapshot, and must leave the engine
// unchanged so the caller can fall back to a full rebuild.
func TestRecalcDetectsShapeCorruption(t *testing.T) {
	p, usage := buildWide(4, 6)
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	// Corrupt the cloned tree shape: drop the last leaf of group g001, then
	// dirty another leaf of the same group so the walk visits it.
	g := tree.Root.Children[1]
	g.Children = g.Children[:len(g.Children)-1]

	_, _, _, err := eng.Apply(map[string]float64{"u001_000": usage["u001_000"] + 1})
	if err == nil {
		t.Fatal("Apply on a corrupted tree shape succeeded, want walk-failure error")
	}
	if !strings.Contains(err.Error(), "incremental walk") {
		t.Fatalf("error %q does not name the incremental walk", err)
	}
	if eng.Tree() != tree || eng.Index() != ix {
		t.Fatal("engine adopted state from a failed Apply")
	}

	// A disappearing top-level subtree must fail the segment-count check.
	tree2 := Compute(p, usage, cfg)
	eng2 := NewRecalc(tree2, NewIndex(tree2))
	tree2.Root.Children = tree2.Root.Children[:len(tree2.Root.Children)-1]
	if _, _, _, err := eng2.Apply(map[string]float64{"u000_000": 1.25}); err == nil {
		t.Fatal("Apply with a missing top-level subtree succeeded, want segment-count error")
	}

	// The fallback path works: re-anchoring on a fresh full rebuild makes
	// the engine usable again.
	usage["u001_000"] += 1
	freshTree := Compute(p, usage, cfg)
	freshIx := NewIndex(freshTree)
	eng.Reset(freshTree, freshIx)
	gotTree, gotIx, _, err := eng.Apply(map[string]float64{"u002_002": 999})
	if err != nil {
		t.Fatalf("Apply after Reset: %v", err)
	}
	usage["u002_002"] = 999
	wantTree := Compute(p, usage, cfg)
	compareNodes(t, gotTree.Root, wantTree.Root, "")
	compareIndexes(t, gotIx, NewIndex(wantTree))
}

// TestRecalcParallelMaterialization drives Apply with enough dirty leaves
// spread over enough segments to cross materializeParallelThreshold, with
// GOMAXPROCS pinned above one so the worker pool actually fans out (the
// suite otherwise runs serial on single-core machines). Bit-identity against
// the full recompute proves the parallel and serial materialization paths
// produce the same arenas.
func TestRecalcParallelMaterialization(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	p, usage := buildWide(80, 80)
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	// One dirty user in each of 70 segments: 70·80 = 5600 dirty-segment
	// leaves ≥ materializeParallelThreshold.
	delta := map[string]float64{}
	for g := 0; g < 70; g++ {
		u := fmt.Sprintf("u%03d_%03d", g, g%80)
		delta[u] = usage[u] + float64(g) + 0.25
		usage[u] = delta[u]
	}
	gotTree, gotIx, st, err := eng.Apply(delta)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.MaterializedSegments != 70 || st.SharedSegments != 10 {
		t.Fatalf("segments materialized/shared = %d/%d, want 70/10",
			st.MaterializedSegments, st.SharedSegments)
	}
	wantTree := Compute(p, usage, cfg)
	compareNodes(t, gotTree.Root, wantTree.Root, "")
	compareIndexes(t, gotIx, NewIndex(wantTree))

	// A shape corruption surfaces as an error through the worker pool too.
	gotTree.Root.Children[5].Children = gotTree.Root.Children[5].Children[:40]
	delta2 := map[string]float64{}
	for g := 0; g < 70; g++ {
		u := fmt.Sprintf("u%03d_%03d", g, (g+1)%40)
		delta2[u] = 7777.5 + float64(g)
	}
	if _, _, _, err := eng.Apply(delta2); err == nil {
		t.Fatal("Apply on a corrupted tree shape succeeded under parallel materialization")
	}
}

// TestRecalcApplySteadyStateAllocs pins the steady-state allocation cost of
// one Apply: scratch (dirty list, spine, segment marks) is reused across
// calls, so a warmed engine allocates only what the immutable snapshot
// itself needs (cloned nodes, heads, one rebuilt tail, the index shell).
func TestRecalcApplySteadyStateAllocs(t *testing.T) {
	p, usage := buildWide(8, 16)
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	seq := 0.0
	apply := func() {
		seq++
		if _, _, _, err := eng.Apply(map[string]float64{"u003_007": 100 + seq}); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	apply() // warm the scratch buffers
	allocs := testing.AllocsPerRun(20, apply)
	// One single-user Apply on this tree clones one spine + one rescored
	// group (batched), rebuilds one segment tail and assembles the index
	// shell — comfortably under 40 allocations. The bound is loose enough
	// to absorb map-iteration noise but fails if per-refresh scratch reuse
	// regresses (the sort.Slice closure alone used to add several).
	if allocs > 40 {
		t.Fatalf("steady-state Apply allocates %.0f objects per op, want <= 40", allocs)
	}
	t.Logf("steady-state Apply: %.1f allocs/op", allocs)
}
