package fairshare

import (
	"math"
	"testing"

	"repro/internal/policy"
	"repro/internal/vector"
)

func flatPolicy(t *testing.T, shares map[string]float64) *policy.Tree {
	t.Helper()
	p, err := policy.FromShares(shares)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// figure3Policy builds a three-level hierarchy similar to Figure 3.
func figure3Policy(t *testing.T) *policy.Tree {
	t.Helper()
	p := policy.NewTree()
	must := func(_ string, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Add("", "hq", 0.3))
	must(p.Add("", "lq", 0.1))
	must(p.Add("", "grid", 0.6))
	must(p.Add("/grid", "projA", 0.75))
	must(p.Add("/grid", "projB", 0.25))
	must(p.Add("/grid/projA", "u1", 0.25))
	must(p.Add("/grid/projA", "u2", 0.75))
	must(p.Add("/grid/projB", "u3", 1.0))
	return p
}

func TestBalancedUsersSitAtBalancePoint(t *testing.T) {
	p := flatPolicy(t, map[string]float64{"a": 0.5, "b": 0.5})
	ft := Compute(p, map[string]float64{"a": 100, "b": 100}, DefaultConfig())
	for _, u := range []string{"a", "b"} {
		v, ok := ft.Vector(u)
		if !ok {
			t.Fatalf("no vector for %s", u)
		}
		if math.Abs(v[0]-5000) > 1e-9 {
			t.Errorf("%s value = %g, want balance 5000", u, v[0])
		}
		pr, _ := ft.LeafPriority(u)
		if math.Abs(pr) > 1e-12 {
			t.Errorf("%s priority = %g, want 0", u, pr)
		}
	}
}

func TestUnderUserRanksAboveOverUser(t *testing.T) {
	p := flatPolicy(t, map[string]float64{"under": 0.5, "over": 0.5})
	ft := Compute(p, map[string]float64{"under": 10, "over": 90}, DefaultConfig())
	vu, _ := ft.Vector("under")
	vo, _ := ft.Vector("over")
	if vu[0] <= 5000 || vo[0] >= 5000 {
		t.Errorf("values: under=%g over=%g", vu[0], vo[0])
	}
	pu, _ := ft.LeafPriority("under")
	po, _ := ft.LeafPriority("over")
	if pu <= 0 || po >= 0 {
		t.Errorf("priorities: under=%g over=%g", pu, po)
	}
}

func TestZeroUsageMaxPriority(t *testing.T) {
	// The bursty-test bound: share 0.12, k 0.5 → max priority
	// 0.5·(1+0.12)=0.56, reached when the user has no usage at all while
	// others consume.
	p := flatPolicy(t, map[string]float64{"u3": 0.12, "rest": 0.88})
	ft := Compute(p, map[string]float64{"u3": 0, "rest": 1000}, DefaultConfig())
	pr, ok := ft.LeafPriority("u3")
	if !ok {
		t.Fatal("u3 missing")
	}
	if math.Abs(pr-0.56) > 1e-12 {
		t.Errorf("u3 priority = %g, want 0.56", pr)
	}
	if got := MaxPriority(DefaultConfig(), 0.12); math.Abs(got-0.56) > 1e-12 {
		t.Errorf("MaxPriority = %g", got)
	}
	if pr > MaxPriority(DefaultConfig(), 0.12)+1e-12 {
		t.Error("priority exceeded theoretical bound")
	}
}

func TestDistanceWeightBlend(t *testing.T) {
	p := flatPolicy(t, map[string]float64{"u": 0.3, "v": 0.7})
	usage := map[string]float64{"u": 10, "v": 90}
	// k=1: pure relative; u: rel = (0.3-0.1)/0.3 = 2/3.
	ft1 := Compute(p, usage, Config{DistanceWeight: 1, Resolution: 10000})
	pr, _ := ft1.LeafPriority("u")
	if math.Abs(pr-2.0/3.0) > 1e-12 {
		t.Errorf("k=1 priority = %g, want 2/3", pr)
	}
	// k=0: pure absolute; u: abs = 0.3-0.1 = 0.2.
	ft0 := Compute(p, usage, Config{DistanceWeight: 0, Resolution: 10000})
	pr, _ = ft0.LeafPriority("u")
	if math.Abs(pr-0.2) > 1e-12 {
		t.Errorf("k=0 priority = %g, want 0.2", pr)
	}
	// k=0.5 is the midpoint of the two.
	ftHalf := Compute(p, usage, DefaultConfig())
	pr, _ = ftHalf.LeafPriority("u")
	if math.Abs(pr-0.5*(2.0/3.0+0.2)) > 1e-12 {
		t.Errorf("k=0.5 priority = %g", pr)
	}
}

func TestRelativeComponentClamped(t *testing.T) {
	// Over-consumption makes share-usageShare negative; the relative
	// component clamps to 0 (it is "always in the range [0,1]").
	p := flatPolicy(t, map[string]float64{"hog": 0.1, "idle": 0.9})
	ft := Compute(p, map[string]float64{"hog": 100, "idle": 0}, Config{DistanceWeight: 1, Resolution: 10000})
	pr, _ := ft.LeafPriority("hog")
	if pr != 0 {
		t.Errorf("clamped relative priority = %g, want 0", pr)
	}
}

func TestSubgroupIsolationInTree(t *testing.T) {
	// A node's value depends only on its sibling group: u1 vs u2 inside
	// projA must be unaffected by how much projB consumes.
	p := figure3Policy(t)
	light := Compute(p, map[string]float64{"u1": 10, "u2": 30, "u3": 1, "hq": 50, "lq": 20}, DefaultConfig())
	heavy := Compute(p, map[string]float64{"u1": 10, "u2": 30, "u3": 100000, "hq": 50, "lq": 20}, DefaultConfig())
	for _, u := range []string{"u1", "u2"} {
		a, _ := light.Vector(u)
		b, _ := heavy.Vector(u)
		// The last element (within projA) must be identical.
		if math.Abs(a[len(a)-1]-b[len(b)-1]) > 1e-9 {
			t.Errorf("%s leaf value changed with unrelated usage: %g vs %g", u, a[len(a)-1], b[len(b)-1])
		}
	}
}

func TestVectorDepthAndPadding(t *testing.T) {
	p := figure3Policy(t)
	usage := map[string]float64{"u1": 1, "u2": 2, "u3": 3, "hq": 4, "lq": 5}
	ft := Compute(p, usage, DefaultConfig())
	v3, ok := ft.Vector("u3")
	if !ok || len(v3) != 3 {
		t.Fatalf("u3 vector = %v", v3)
	}
	vlq, ok := ft.Vector("lq")
	if !ok || len(vlq) != 1 {
		t.Fatalf("lq vector = %v", vlq)
	}
	// Padded comparison against a depth-3 vector works (like /LQ in the
	// paper's example).
	padded := vlq.PadTo(3, ft.Config.Balance())
	if padded[1] != 5000 || padded[2] != 5000 {
		t.Errorf("padded = %v", padded)
	}
}

func TestValuesWithinResolution(t *testing.T) {
	p := figure3Policy(t)
	ft := Compute(p, map[string]float64{"u1": 1000, "hq": 1}, DefaultConfig())
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Value < 0 || n.Value >= 10000 {
			t.Errorf("node %s value %g outside [0,10000)", n.Name, n.Value)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ft.Root)
}

func TestZeroGroupUsageGivesFullPriority(t *testing.T) {
	p := flatPolicy(t, map[string]float64{"a": 0.6, "b": 0.4})
	ft := Compute(p, nil, DefaultConfig())
	pa, _ := ft.LeafPriority("a")
	// usageShare = 0 → abs = share, rel = 1 → k + (1-k)·share.
	want := 0.5 + 0.5*0.6
	if math.Abs(pa-want) > 1e-12 {
		t.Errorf("a priority = %g, want %g", pa, want)
	}
}

func TestEntriesCarryPathShares(t *testing.T) {
	p := figure3Policy(t)
	usage := map[string]float64{"u1": 10, "u2": 30, "u3": 20, "hq": 30, "lq": 10}
	ft := Compute(p, usage, DefaultConfig())
	entries := ft.Entries()
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(entries))
	}
	var u2 *vector.Entry
	for i := range entries {
		if entries[i].User == "u2" {
			u2 = &entries[i]
		}
	}
	if u2 == nil {
		t.Fatal("u2 entry missing")
	}
	wantShares := []float64{0.6, 0.75, 0.75}
	for i := range wantShares {
		if math.Abs(u2.PathShares[i]-wantShares[i]) > 1e-12 {
			t.Errorf("u2 path shares = %v, want %v", u2.PathShares, wantShares)
			break
		}
	}
	// Usage shares along path: grid usage 60 of 100 → 0.6; projA 40 of 60
	// → 2/3; u2 30 of 40 → 0.75.
	wantUsage := []float64{0.6, 2.0 / 3.0, 0.75}
	for i := range wantUsage {
		if math.Abs(u2.PathUsage[i]-wantUsage[i]) > 1e-12 {
			t.Errorf("u2 path usage = %v, want %v", u2.PathUsage, wantUsage)
			break
		}
	}
	if len(u2.Vec) != 3 {
		t.Errorf("u2 vector = %v", u2.Vec)
	}
}

func TestPrioritiesWithAllProjections(t *testing.T) {
	p := figure3Policy(t)
	usage := map[string]float64{"u1": 10, "u2": 80, "u3": 5, "hq": 100, "lq": 0}
	ft := Compute(p, usage, DefaultConfig())
	for _, proj := range vector.Projections() {
		got := ft.Priorities(proj)
		if len(got) != 5 {
			t.Errorf("%s: %d priorities", proj.Name(), len(got))
		}
		for u, v := range got {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s: %s = %g", proj.Name(), u, v)
			}
		}
		// lq has zero usage and must outrank hq (the heavy user) under
		// every projection.
		if got["lq"] <= got["hq"] {
			t.Errorf("%s: lq=%g should outrank hq=%g", proj.Name(), got["lq"], got["hq"])
		}
	}
}

func TestFindAndDepth(t *testing.T) {
	p := figure3Policy(t)
	ft := Compute(p, nil, DefaultConfig())
	n, ok := ft.Find("/grid/projA")
	if !ok || n.Name != "projA" {
		t.Errorf("Find = %v, %v", n, ok)
	}
	if _, ok := ft.Find("/grid/ghost"); ok {
		t.Error("found nonexistent path")
	}
	root, ok := ft.Find("/")
	if !ok || root != ft.Root {
		t.Error("root Find failed")
	}
	if d := ft.Depth(); d != 3 {
		t.Errorf("Depth = %d", d)
	}
}

func TestLookupMissingUser(t *testing.T) {
	p := figure3Policy(t)
	ft := Compute(p, nil, DefaultConfig())
	if _, ok := ft.Vector("ghost"); ok {
		t.Error("vector for missing user")
	}
	if _, ok := ft.LeafPriority("ghost"); ok {
		t.Error("priority for missing user")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{DistanceWeight: 7, Resolution: -1}.normalized()
	if c.DistanceWeight != 1 {
		t.Errorf("clamped k = %g", c.DistanceWeight)
	}
	if c.Resolution != 10000 {
		t.Errorf("defaulted resolution = %g", c.Resolution)
	}
	if b := (Config{}).Balance(); b != 5000 {
		t.Errorf("default balance = %g", b)
	}
}

func TestComputeDoesNotMutatePolicy(t *testing.T) {
	p := figure3Policy(t)
	before := p.Root.Children[0].Share
	Compute(p, map[string]float64{"u1": 5}, DefaultConfig())
	if p.Root.Children[0].Share != before {
		t.Error("Compute mutated the policy tree")
	}
}

func TestProportionalValues(t *testing.T) {
	// Fairshare values are proportional: doubling the distance doubles the
	// offset from the balance point.
	p := flatPolicy(t, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	ft := Compute(p, map[string]float64{"a": 50, "b": 30, "c": 20}, DefaultConfig())
	// All at target → all at balance.
	for _, u := range []string{"a", "b", "c"} {
		v, _ := ft.Vector(u)
		if math.Abs(v[0]-5000) > 1e-9 {
			t.Errorf("%s = %g", u, v[0])
		}
	}
}
