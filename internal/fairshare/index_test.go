package fairshare

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/vector"
)

func buildDeep(t *testing.T) (*Tree, map[string]float64) {
	t.Helper()
	p := policy.NewTree()
	mustAdd := func(parent, name string, share float64) {
		t.Helper()
		if _, err := p.Add(parent, name, share); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("", "hpc", 0.7)
	mustAdd("", "grid", 0.3)
	mustAdd("/hpc", "astro", 0.6)
	mustAdd("/hpc", "bio", 0.4)
	mustAdd("/hpc/astro", "u1", 0.5)
	mustAdd("/hpc/astro", "u2", 0.5)
	mustAdd("/hpc/bio", "u3", 1)
	mustAdd("/grid", "u4", 1)
	usage := map[string]float64{"u1": 10, "u2": 40, "u3": 25, "u4": 25}
	return Compute(p, usage, DefaultConfig()), usage
}

// TestIndexMatchesTreeWalks pins the index against the walking lookups it
// replaces: same vectors, same leaf priorities, same entry set.
func TestIndexMatchesTreeWalks(t *testing.T) {
	tree, _ := buildDeep(t)
	ix := tree.Index()
	if ix.Len() != 4 {
		t.Fatalf("indexed %d users, want 4", ix.Len())
	}
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		e, ok := ix.Lookup(u)
		if !ok {
			t.Fatalf("user %s missing from index", u)
		}
		vec, pri, ok := tree.Lookup(u)
		if !ok {
			t.Fatalf("user %s missing from tree", u)
		}
		if len(e.Vec) != len(vec) {
			t.Fatalf("%s: index vector %v, walk vector %v", u, e.Vec, vec)
		}
		for i := range vec {
			if e.Vec[i] != vec[i] {
				t.Errorf("%s: index vector %v, walk vector %v", u, e.Vec, vec)
			}
		}
		if e.LeafPriority != pri {
			t.Errorf("%s: index leaf priority %g, walk %g", u, e.LeafPriority, pri)
		}
		if e.User != u {
			t.Errorf("entry user %q, want %q", e.User, u)
		}
	}
	if _, ok := ix.Lookup("ghost"); ok {
		t.Error("ghost user found in index")
	}

	// The projection view must agree with Tree.Entries (same users, same
	// vectors) so projecting from the index gives identical priorities.
	fromTree := tree.Priorities(vector.Percental{})
	fromIndex := vector.Percental{}.Project(ix.Entries(), tree.Config.Resolution)
	if len(fromTree) != len(fromIndex) {
		t.Fatalf("projection cardinality: tree %d, index %d", len(fromTree), len(fromIndex))
	}
	for u, v := range fromTree {
		if fromIndex[u] != v {
			t.Errorf("%s: projection from index %g, from tree %g", u, fromIndex[u], v)
		}
	}
}

// TestLookupMatchesVectorAndLeafPriority pins the combined single-walk
// lookup against the two separate walks.
func TestLookupMatchesVectorAndLeafPriority(t *testing.T) {
	tree, _ := buildDeep(t)
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		vec, pri, ok := tree.Lookup(u)
		if !ok {
			t.Fatalf("user %s not found", u)
		}
		wantVec, _ := tree.Vector(u)
		wantPri, _ := tree.LeafPriority(u)
		if len(vec) != len(wantVec) {
			t.Fatalf("%s: Lookup vec %v, Vector %v", u, vec, wantVec)
		}
		for i := range vec {
			if vec[i] != wantVec[i] {
				t.Errorf("%s: Lookup vec %v, Vector %v", u, vec, wantVec)
			}
		}
		if pri != wantPri {
			t.Errorf("%s: Lookup priority %g, LeafPriority %g", u, pri, wantPri)
		}
	}
	if _, _, ok := tree.Lookup("ghost"); ok {
		t.Error("ghost user found")
	}
}

// TestEntriesNoAliasing pins the append-aliasing hardening: every entry
// must own its backing arrays, so mutating one entry cannot corrupt
// another (the old recursive append shared backing arrays across sibling
// iterations and was safe only by evaluation order).
func TestEntriesNoAliasing(t *testing.T) {
	tree, _ := buildDeep(t)
	entries := tree.Entries()
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Snapshot all values, then scribble over every slice of every entry.
	type copied struct{ vec, shares, usage []float64 }
	orig := make(map[string]copied, len(entries))
	for _, e := range entries {
		orig[e.User] = copied{
			vec:    append([]float64(nil), e.Vec...),
			shares: append([]float64(nil), e.PathShares...),
			usage:  append([]float64(nil), e.PathUsage...),
		}
	}
	for i := range entries {
		for j := range entries[i].Vec {
			entries[i].Vec[j] = -1
			entries[i].PathShares[j] = -1
			entries[i].PathUsage[j] = -1
		}
		// After scribbling entry i, all later entries must be intact.
		for _, later := range entries[i+1:] {
			want := orig[later.User]
			for j := range later.Vec {
				if later.Vec[j] != want.vec[j] ||
					later.PathShares[j] != want.shares[j] ||
					later.PathUsage[j] != want.usage[j] {
					t.Fatalf("mutating entry %q corrupted entry %q", entries[i].User, later.User)
				}
			}
		}
	}
	// A fresh walk must be unaffected by the scribbling above.
	fresh := tree.Entries()
	for _, e := range fresh {
		want := orig[e.User]
		for j := range e.Vec {
			if e.Vec[j] != want.vec[j] {
				t.Fatalf("entry %q aliases tree state", e.User)
			}
		}
	}
}

// TestIndexEntriesImmutableUnderReuse verifies index entries own their
// slices too: scribbling over the projection view of one entry must not
// leak into lookups of other users.
func TestIndexEntriesImmutableUnderReuse(t *testing.T) {
	tree, _ := buildDeep(t)
	ix := tree.Index()
	u1, _ := ix.Lookup("u1")
	before := append([]float64(nil), u1.Vec...)
	u2, _ := ix.Lookup("u2")
	for i := range u2.Vec {
		u2.Vec[i] = -99
	}
	after, _ := ix.Lookup("u1")
	for i := range before {
		if after.Vec[i] != before[i] {
			t.Fatalf("mutating u2's vector corrupted u1's: %v vs %v", after.Vec, before)
		}
	}
}

// TestParallelComputeMatchesSerial pins the parallel scoring path against
// the serial one on a tree past the parallel threshold.
func TestParallelComputeMatchesSerial(t *testing.T) {
	// 80 groups × 80 users = 6481 nodes ≥ parallelComputeThreshold.
	p, usage := buildWide(80, 80)
	cfg := DefaultConfig()
	par := Compute(p, usage, cfg)

	// Serial reference: build via the single-goroutine path (normalizing
	// shares inline like buildTree's parallel branch) and score recursively.
	root, nodes := buildNorm(p.Root, p.Root.Share, usage)
	if nodes < parallelComputeThreshold {
		t.Fatalf("test tree too small to exercise the parallel path: %d nodes", nodes)
	}
	root.Share = 1
	root.UsageShare = 1
	root.Value = cfg.normalized().Balance()
	scoreDescendants(root, cfg.normalized())
	ser := &Tree{Root: root, Config: cfg.normalized()}

	parEntries := par.Entries()
	serEntries := ser.Entries()
	if len(parEntries) != len(serEntries) {
		t.Fatalf("entry counts differ: %d vs %d", len(parEntries), len(serEntries))
	}
	serByUser := map[string]vector.Entry{}
	for _, e := range serEntries {
		serByUser[e.User] = e
	}
	for _, e := range parEntries {
		want, ok := serByUser[e.User]
		if !ok {
			t.Fatalf("user %s missing from serial tree", e.User)
		}
		for i := range e.Vec {
			if e.Vec[i] != want.Vec[i] {
				t.Errorf("%s: parallel vec %v, serial %v", e.User, e.Vec, want.Vec)
				break
			}
		}
	}
}
