package fairshare

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// recalcGen issues process-unique clone-generation numbers, so nodes cloned
// by one engine can never be mistaken for another engine's (or another
// pass's) clones, even when trees are handed between engines.
var recalcGen atomic.Uint64

// Recalc is a persistent incremental recomputation engine: it keeps the
// previously computed Tree/Index pair plus a flattened description of every
// leaf's root-to-leaf path, and turns a usage delta set into a new snapshot
// in O(dirty·depth) tree work instead of a full O(users) rebuild.
//
// The produced snapshots are immutable and structurally share everything a
// delta does not touch: nodes off the dirty paths, the index's stripe maps
// and duplicate tables, every entry's name and target-share slice, and —
// through the index's segmented value half — the entire suffix arenas of
// top-level subtrees with no dirty leaf. Only the dirty root-to-leaf spines
// are cloned (copy-on-write), and only sibling groups containing a dirty
// node are rescored. Any delta still shifts the root group's usage
// denominator, changing every top-level sibling's scored fields — but those
// values are interned once per segment head, so absorbing the shift costs
// two floats per segment instead of a per-leaf prefix rewrite. Segment
// tails of dirty subtrees are re-materialized (flat copy plus sparse
// overwrites, fanned across a bounded worker pool when the dirty population
// is large); clean subtrees re-publish as pointer copies. That takes the
// per-refresh materialization floor from O(users·depth) to
// O(dirty·depth + segments).
//
// All outputs are bit-identical to a from-scratch Compute+NewIndex over the
// merged usage map: usage sums are re-folded left-to-right in the exact
// child order of the full build (never adjusted by ±delta, which would
// change float rounding), scoring reuses the same expressions, and interned
// heads hold the very same floats the flat arenas used to.
//
// A Recalc is NOT safe for concurrent use; the FCS drives it under its
// refresh mutex. Published snapshots remain safe for lock-free readers:
// Apply only ever writes to freshly cloned nodes and freshly allocated
// segment tails.
type Recalc struct {
	tree  *Tree
	index *Index
	// leafUsage[i] is the absolute decayed usage of leaf i (DFS order) in
	// the engine's current tree.
	leafUsage []float64
	// pathOff/pathIdx flatten each leaf's root-to-leaf child-index chain:
	// leaf i's chain is pathIdx[pathOff[i]:pathOff[i+1]], each element the
	// child index to descend at that level.
	pathOff []int32
	pathIdx []int32
	// nodes is the total node count of the tree (for stats and gauges).
	nodes int
	// gen is the clone-generation number of the current Apply pass: a node
	// with this gen is one of the pass's own (mutable) clones.
	gen uint64
	// posBuf is scratch for single-position lookups.
	posBuf [1]int32
	// dirtyBuf/spineBuf are scratch slices reused across Apply calls so
	// steady-state refreshes don't reallocate them.
	dirtyBuf []dirtyLeaf
	spineBuf []spineNode
	// segMark/dirtySegBuf track which segments this pass dirtied: a segment
	// s with segMark[s] == gen needs its tail re-materialized. Generation
	// tags make clearing free.
	segMark     []uint64
	dirtySegBuf []int32
}

// dirtyLeaf is one resolved delta: the leaf position and its new usage.
type dirtyLeaf struct {
	pos int32
	val float64
}

// spineNode is one cloned internal node and its depth (root = 0), used to
// order the bottom-up usage re-fold.
type spineNode struct {
	n     *Node
	depth int32
}

// RecalcStats describes what one Apply did.
type RecalcStats struct {
	// DirtyLeaves is the number of leaves whose usage actually changed
	// (bitwise) — no-op deltas and unknown users are dropped.
	DirtyLeaves int
	// DirtyGroups is the number of sibling groups rescored.
	DirtyGroups int
	// ClonedNodes is the number of tree nodes copied; the remaining
	// SharedNodes are pointer-shared with the previous snapshot's tree.
	ClonedNodes int
	SharedNodes int
	// TotalLeaves is the leaf population of the tree.
	TotalLeaves int
	// MaterializedSegments is the number of top-level-subtree segments whose
	// tail arenas were rebuilt; SharedSegments were re-published as pointer
	// copies.
	MaterializedSegments int
	SharedSegments       int
	// Per-phase wall time: FoldDuration covers delta resolution, spine
	// cloning and the bottom-up usage re-fold (phases 1–3); RescoreDuration
	// covers sibling-group rescoring (phase 4); MaterializeDuration covers
	// segment re-materialization and index assembly (phase 5).
	FoldDuration        time.Duration
	RescoreDuration     time.Duration
	MaterializeDuration time.Duration
}

// NewRecalc creates an engine over a freshly built tree/index pair. The pair
// must come from the same Compute (the index's entries must be the tree's
// leaves in DFS order).
func NewRecalc(t *Tree, ix *Index) *Recalc {
	r := &Recalc{}
	r.Reset(t, ix)
	return r
}

// Tree returns the engine's current tree.
func (r *Recalc) Tree() *Tree { return r.tree }

// Index returns the engine's current index.
func (r *Recalc) Index() *Index { return r.index }

// Leaves returns the engine's leaf count.
func (r *Recalc) Leaves() int { return len(r.leafUsage) }

// Nodes returns the engine's total tree node count.
func (r *Recalc) Nodes() int { return r.nodes }

// Reset re-anchors the engine on a new full rebuild, rebuilding the flat
// path tables. Call it after any full Compute+NewIndex (tree edit,
// projection config change, delta-log overflow).
func (r *Recalc) Reset(t *Tree, ix *Index) {
	n := ix.Len()
	r.tree, r.index = t, ix
	r.leafUsage = make([]float64, 0, n)
	r.pathOff = make([]int32, 0, n+1)
	r.pathIdx = r.pathIdx[:0]
	r.nodes = 0
	var idxStack []int32
	var walk func(n *Node)
	walk = func(n *Node) {
		r.nodes++
		if len(n.Children) == 0 {
			if len(idxStack) > 0 {
				r.pathOff = append(r.pathOff, int32(len(r.pathIdx)))
				r.pathIdx = append(r.pathIdx, idxStack...)
				r.leafUsage = append(r.leafUsage, n.Usage)
			}
			return
		}
		for i, c := range n.Children {
			idxStack = append(idxStack, int32(i))
			walk(c)
			idxStack = idxStack[:len(idxStack)-1]
		}
	}
	walk(t.Root)
	r.pathOff = append(r.pathOff, int32(len(r.pathIdx)))
}

// materializeParallelThreshold is the dirty-leaf population (summed over
// dirty segments) above which segment tails rebuild on a worker pool.
// Below it the goroutine fan-out costs more than the copies it spreads.
const materializeParallelThreshold = 4096

// Apply merges a usage delta set (absolute new totals per user; users absent
// from the policy are ignored, matching Compute's treatment of unknown usage
// keys) into the engine's state and returns the new immutable Tree and Index.
// A delta that changes nothing (bitwise) returns the current tree and index
// unchanged — callers can detect this via DirtyLeaves == 0 and reuse their
// published snapshot wholesale.
//
// On success the engine adopts the new state; the previous tree/index remain
// valid immutable snapshots. On error the engine is unchanged and the caller
// should fall back to a full rebuild.
func (r *Recalc) Apply(deltas map[string]float64) (*Tree, *Index, RecalcStats, error) {
	start := time.Now()
	st := RecalcStats{TotalLeaves: len(r.leafUsage)}
	if r.tree == nil || r.index == nil {
		return nil, nil, st, errors.New("fairshare: Recalc not initialized")
	}
	if len(r.leafUsage) != r.index.Len() {
		return nil, nil, st, fmt.Errorf("fairshare: Recalc tree/index mismatch (%d leaves vs %d entries)",
			len(r.leafUsage), r.index.Len())
	}

	// Phase 1: resolve dirty leaf positions, dropping bitwise no-ops and
	// users the policy does not know. Map iteration order does not matter:
	// every later phase re-derives values from canonical child order.
	dirty := r.dirtyBuf[:0]
	for user, val := range deltas {
		for _, p := range r.index.positions(user, r.posBuf[:0]) {
			if sameBits(r.leafUsage[p], val) {
				continue
			}
			dirty = append(dirty, dirtyLeaf{pos: p, val: val})
		}
	}
	r.dirtyBuf = dirty
	if len(dirty) == 0 {
		return r.tree, r.index, st, nil
	}
	st.DirtyLeaves = len(dirty)

	// Phase 2: copy-on-write clone of every dirty root-to-leaf spine. Spine
	// internals get copied Children slices (their children may be swapped);
	// dirty leaves get plain struct copies carrying the new usage. Clones
	// are tagged with this pass's generation number so later phases can tell
	// them from immutable shared nodes without a map.
	r.gen = recalcGen.Add(1)
	cfg := r.tree.Config
	oldRoot := r.tree.Root
	newRoot := &Node{}
	*newRoot = *oldRoot
	newRoot.Children = append([]*Node(nil), oldRoot.Children...)
	newRoot.gen = r.gen
	st.ClonedNodes = 1
	spine := append(r.spineBuf[:0], spineNode{newRoot, 0})
	for _, d := range dirty {
		n := newRoot
		off, end := r.pathOff[d.pos], r.pathOff[d.pos+1]
		for k := off; k < end; k++ {
			ci := int(r.pathIdx[k])
			ch := n.Children[ci]
			if ch.gen != r.gen {
				nc := &Node{}
				*nc = *ch
				nc.gen = r.gen
				if k < end-1 {
					nc.Children = append([]*Node(nil), ch.Children...)
					spine = append(spine, spineNode{nc, k - off + 1})
				}
				n.Children[ci] = nc
				st.ClonedNodes++
				ch = nc
			}
			n = ch
		}
		// n is the cloned dirty leaf.
		n.Usage = d.val
	}
	r.spineBuf = spine

	// Phase 3: re-sum cloned internals' subtree usage bottom-up, folding
	// children left-to-right exactly like the full build (adding deltas to
	// the old sums would change float rounding and break bit-identity).
	// Deeper spines first so parents always fold final child values; nodes
	// at equal depth are independent, so the unstable sort is fine.
	slices.SortFunc(spine, func(a, b spineNode) int { return int(b.depth) - int(a.depth) })
	for _, sn := range spine {
		var u float64
		for _, c := range sn.n.Children {
			u += c.Usage
		}
		sn.n.Usage = u
	}
	foldDone := time.Now()

	// Phase 4: rescore exactly the sibling groups that contain a dirty
	// node. Off-path siblings whose scored fields change (they share the
	// dirty group's usage denominator) are value-cloned shallowly — their
	// Children slice is shared, because nothing below them changed.
	for _, sn := range spine {
		r.scoreGroupCOW(sn.n, cfg, &st)
	}
	st.SharedNodes = r.nodes - st.ClonedNodes
	rescoreDone := time.Now()

	// Phase 5: re-materialize the value half of the index along the segment
	// seam. Every snapshot gets fresh interned heads (the root usage
	// denominator shifted, so every top-level child's scored values may have
	// changed — two floats per segment absorb that). Tail arenas rebuild
	// only for segments containing a dirty leaf, fanned across a worker pool
	// when the dirty population is large; every other segment's tail is
	// re-published as a pointer copy, with no per-leaf work at all.
	old := r.index
	S := len(old.segs)
	if len(newRoot.Children) != S {
		return nil, nil, st, fmt.Errorf("fairshare: tree has %d top-level subtrees, index has %d segments",
			len(newRoot.Children), S)
	}
	if len(r.segMark) != S {
		r.segMark = make([]uint64, S)
	}
	dirtySegs := r.dirtySegBuf[:0]
	work := 0 // dirty-segment leaf population, for the parallelism gate
	for _, d := range dirty {
		s := old.segOf[d.pos]
		if r.segMark[s] != r.gen {
			r.segMark[s] = r.gen
			dirtySegs = append(dirtySegs, s)
			work += int(old.segs[s].hi - old.segs[s].lo)
		}
	}
	// A leaf hanging directly off the root keeps its raw priority in its
	// segment's tail, and the root rescore may have changed it even when the
	// leaf's own usage did not — re-materialize such segments too.
	for s, c := range newRoot.Children {
		if len(c.Children) == 0 && c.gen == r.gen && r.segMark[s] != r.gen {
			r.segMark[s] = r.gen
			dirtySegs = append(dirtySegs, int32(s))
			work++
		}
	}
	r.dirtySegBuf = dirtySegs

	headVec := make([]float64, S)
	headUsage := make([]float64, S)
	tails := make([]*segTail, S)
	copy(tails, old.tails)
	for s, c := range newRoot.Children {
		headVec[s] = c.Value
		headUsage[s] = c.UsageShare
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirtySegs) {
		workers = len(dirtySegs)
	}
	var rebuildErr error
	if workers > 1 && work >= materializeParallelThreshold {
		var next atomic.Int64
		errs := make([]error, workers)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(dirtySegs) {
						return
					}
					s := dirtySegs[k]
					nt, err := r.rebuildSeg(s, newRoot.Children[s])
					if err != nil {
						errs[w] = err
						return
					}
					tails[s] = nt
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				rebuildErr = err
				break
			}
		}
	} else {
		for _, s := range dirtySegs {
			nt, err := r.rebuildSeg(s, newRoot.Children[s])
			if err != nil {
				rebuildErr = err
				break
			}
			tails[s] = nt
		}
	}
	if rebuildErr != nil {
		return nil, nil, st, rebuildErr
	}
	st.MaterializedSegments = len(dirtySegs)
	st.SharedSegments = S - len(dirtySegs)

	newIndex := &Index{
		users:     old.users,
		offs:      old.offs,
		shares:    old.shares,
		segs:      old.segs,
		segOf:     old.segOf,
		headVec:   headVec,
		headUsage: headUsage,
		tails:     tails,
		comp:      make([]composedSeg, S),
		stripes:   old.stripes,
		dups:      old.dups,
	}
	newTree := &Tree{Root: newRoot, Config: cfg}

	// Commit: adopt the new state. leafUsage/path tables are positionally
	// stable because the tree structure did not change.
	for _, d := range dirty {
		r.leafUsage[d.pos] = d.val
	}
	r.tree, r.index = newTree, newIndex
	st.FoldDuration = foldDone.Sub(start)
	st.RescoreDuration = rescoreDone.Sub(foldDone)
	st.MaterializeDuration = time.Since(rescoreDone)
	return newTree, newIndex, st, nil
}

// rebuildSeg re-materializes one dirty segment's tail: a flat copy of the
// previous tail (shared suffixes come along for free) followed by a walk of
// the segment's subtree that overwrites only what changed, pruning at shared
// (un-cloned) subtrees — their contiguous leaf ranges get just the changed
// ancestor prefix written. Safe to call from several goroutines for
// different segments: it reads only immutable engine state and writes only
// the fresh tail.
func (r *Recalc) rebuildSeg(s int32, c *Node) (*segTail, error) {
	old := r.index
	m := old.segs[s]
	lo, hi := int(m.lo), int(m.hi)
	ot := old.tails[s]
	nt := &segTail{
		vec:      make([]float64, len(ot.vec)),
		usage:    make([]float64, len(ot.usage)),
		leafPrio: make([]float64, len(ot.leafPrio)),
	}
	copy(nt.vec, ot.vec)
	copy(nt.usage, ot.usage)
	copy(nt.leafPrio, ot.leafPrio)
	if len(c.Children) == 0 {
		// The top-level child is itself a leaf: the segment has no tail
		// levels, only the raw priority.
		if hi-lo != 1 {
			return nil, fmt.Errorf("fairshare: incremental walk found a leaf segment spanning %d entries", hi-lo)
		}
		nt.leafPrio[0] = c.Priority
		return nt, nil
	}
	base := int(old.offs[lo])
	pos := lo
	ok := true
	var vecStack, usageStack []float64
	var down func(nd *Node)
	down = func(nd *Node) {
		if !ok {
			return
		}
		if len(nd.Children) == 0 {
			// A cloned leaf: rewrite its whole tail range. The stacks hold
			// levels 1..depth-1 (the walk starts below the interned head).
			d := len(vecStack)
			if pos >= hi || int(old.offs[pos+1]-old.offs[pos])-1 != d {
				ok = false
				return
			}
			to := int(old.offs[pos]) - base - (pos - lo)
			copy(nt.vec[to:to+d], vecStack)
			copy(nt.usage[to:to+d], usageStack)
			nt.leafPrio[pos-lo] = nd.Priority
			pos++
			return
		}
		for _, ch := range nd.Children {
			if ch.gen == r.gen {
				vecStack = append(vecStack, ch.Value)
				usageStack = append(usageStack, ch.UsageShare)
				down(ch)
				vecStack = vecStack[:len(vecStack)-1]
				usageStack = usageStack[:len(usageStack)-1]
				continue
			}
			// Shared subtree: its entries keep their old tail values from
			// this depth down (already in place from the flat copy); only
			// the changed ancestor prefix needs writing.
			j := len(vecStack)
			cnt := int(ch.leaves)
			if pos+cnt > hi {
				ok = false
				return
			}
			if j > 0 {
				for i := pos; i < pos+cnt; i++ {
					to := int(old.offs[i]) - base - (i - lo)
					copy(nt.vec[to:to+j], vecStack)
					copy(nt.usage[to:to+j], usageStack)
				}
			}
			pos += cnt
		}
	}
	down(c)
	if !ok || pos != hi {
		return nil, fmt.Errorf("fairshare: incremental walk produced %d entries, segment has %d", pos-lo, hi-lo)
	}
	return nt, nil
}

// scoreGroupCOW rescores one sibling group with scoreGroup's exact
// arithmetic, writing results into already-cloned children directly and
// value-cloning any off-path sibling whose scored fields changed bitwise.
// Off-path clones are batched into one contiguous arena per group (one
// allocation instead of one per sibling — in a dirty group, the shifted
// usage denominator typically changes every sibling); their Children slices
// stay shared, because nothing below an off-path sibling changed.
func (r *Recalc) scoreGroupCOW(n *Node, cfg Config, st *RecalcStats) {
	st.DirtyGroups++
	// n.Usage was re-folded in phase 3 with the same left-to-right order
	// scoreGroup uses for its groupUsage, so reuse it.
	groupUsage := n.Usage
	k := cfg.DistanceWeight
	bal := cfg.Balance()
	var buf []Node
	for i, c := range n.Children {
		us := 0.0
		if groupUsage > 0 {
			us = c.Usage / groupUsage
		}
		abs := c.Share - us
		rel := 0.0
		if c.Share > 0 {
			rel = math.Max(0, math.Min(1, (c.Share-us)/c.Share))
		}
		prio := k*rel + (1-k)*abs
		v := bal * (1 + prio)
		val := math.Max(0, math.Min(cfg.Resolution-1e-9, v))
		if c.gen == r.gen {
			c.UsageShare, c.Priority, c.Value = us, prio, val
			continue
		}
		if sameBits(c.UsageShare, us) && sameBits(c.Priority, prio) && sameBits(c.Value, val) {
			continue
		}
		if buf == nil {
			// At most the remaining siblings can need cloning, so buf never
			// reallocates and the pointers handed out below stay valid.
			buf = make([]Node, 0, len(n.Children)-i)
		}
		buf = append(buf, *c)
		nc := &buf[len(buf)-1]
		nc.UsageShare, nc.Priority, nc.Value = us, prio, val
		nc.gen = r.gen
		n.Children[i] = nc
		st.ClonedNodes++
	}
}

// sameBits reports bitwise float equality (distinguishing ±0, treating any
// NaN payload as equal to itself) — the equality that matters for snapshot
// bit-identity.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
