package fairshare

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// recalcGen issues process-unique clone-generation numbers, so nodes cloned
// by one engine can never be mistaken for another engine's (or another
// pass's) clones, even when trees are handed between engines.
var recalcGen atomic.Uint64

// Recalc is a persistent incremental recomputation engine: it keeps the
// previously computed Tree/Index pair plus a flattened description of every
// leaf's root-to-leaf path, and turns a usage delta set into a new snapshot
// in O(dirty·depth) tree work instead of a full O(users) rebuild.
//
// The produced snapshots are immutable and structurally share everything a
// delta does not touch: nodes off the dirty paths, the index's stripe maps
// and duplicate tables, and every entry's name and target-share slice. Only
// the dirty root-to-leaf spines are cloned (copy-on-write), and only sibling
// groups containing a dirty node are rescored — with the subtlety that any
// delta changes the root group's usage denominator, so every top-level
// sibling's scored fields (and therefore the first element of every entry's
// vector) must be re-materialized even though the arithmetic below the dirty
// paths is skipped. Per-entry values live in the index's flat pointer-free
// arenas, so that re-materialization is a flat copy plus sparse prefix
// overwrites — no per-entry allocations and nothing new for the garbage
// collector to scan.
//
// All outputs are bit-identical to a from-scratch Compute+NewIndex over the
// merged usage map: usage sums are re-folded left-to-right in the exact
// child order of the full build (never adjusted by ±delta, which would
// change float rounding), and scoring reuses the same expressions.
//
// A Recalc is NOT safe for concurrent use; the FCS drives it under its
// refresh mutex. Published snapshots remain safe for lock-free readers:
// Apply only ever writes to freshly cloned nodes.
type Recalc struct {
	tree  *Tree
	index *Index
	// leafUsage[i] is the absolute decayed usage of leaf i (DFS order) in
	// the engine's current tree.
	leafUsage []float64
	// pathOff/pathIdx flatten each leaf's root-to-leaf child-index chain:
	// leaf i's chain is pathIdx[pathOff[i]:pathOff[i+1]], each element the
	// child index to descend at that level.
	pathOff []int32
	pathIdx []int32
	// vecLen is the summed depth of all leaves — the arena size for one
	// rebuild of every entry's vector (and usage-share path).
	vecLen int
	// nodes is the total node count of the tree (for stats and gauges).
	nodes int
	// gen is the clone-generation number of the current Apply pass: a node
	// with this gen is one of the pass's own (mutable) clones.
	gen uint64
	// posBuf is scratch for single-position lookups.
	posBuf [1]int32
}

// RecalcStats describes what one Apply did.
type RecalcStats struct {
	// DirtyLeaves is the number of leaves whose usage actually changed
	// (bitwise) — no-op deltas and unknown users are dropped.
	DirtyLeaves int
	// DirtyGroups is the number of sibling groups rescored.
	DirtyGroups int
	// ClonedNodes is the number of tree nodes copied; the remaining
	// SharedNodes are pointer-shared with the previous snapshot's tree.
	ClonedNodes int
	SharedNodes int
	// TotalLeaves is the leaf population of the tree.
	TotalLeaves int
}

// NewRecalc creates an engine over a freshly built tree/index pair. The pair
// must come from the same Compute (the index's entries must be the tree's
// leaves in DFS order).
func NewRecalc(t *Tree, ix *Index) *Recalc {
	r := &Recalc{}
	r.Reset(t, ix)
	return r
}

// Tree returns the engine's current tree.
func (r *Recalc) Tree() *Tree { return r.tree }

// Index returns the engine's current index.
func (r *Recalc) Index() *Index { return r.index }

// Leaves returns the engine's leaf count.
func (r *Recalc) Leaves() int { return len(r.leafUsage) }

// Nodes returns the engine's total tree node count.
func (r *Recalc) Nodes() int { return r.nodes }

// Reset re-anchors the engine on a new full rebuild, rebuilding the flat
// path tables. Call it after any full Compute+NewIndex (tree edit,
// projection config change, delta-log overflow).
func (r *Recalc) Reset(t *Tree, ix *Index) {
	n := ix.Len()
	r.tree, r.index = t, ix
	r.leafUsage = make([]float64, 0, n)
	r.pathOff = make([]int32, 0, n+1)
	r.pathIdx = r.pathIdx[:0]
	r.vecLen = 0
	r.nodes = 0
	var idxStack []int32
	var walk func(n *Node)
	walk = func(n *Node) {
		r.nodes++
		if len(n.Children) == 0 {
			if len(idxStack) > 0 {
				r.pathOff = append(r.pathOff, int32(len(r.pathIdx)))
				r.pathIdx = append(r.pathIdx, idxStack...)
				r.leafUsage = append(r.leafUsage, n.Usage)
				r.vecLen += len(idxStack)
			}
			return
		}
		for i, c := range n.Children {
			idxStack = append(idxStack, int32(i))
			walk(c)
			idxStack = idxStack[:len(idxStack)-1]
		}
	}
	walk(t.Root)
	r.pathOff = append(r.pathOff, int32(len(r.pathIdx)))
}

// Apply merges a usage delta set (absolute new totals per user; users absent
// from the policy are ignored, matching Compute's treatment of unknown usage
// keys) into the engine's state and returns the new immutable Tree and Index.
// A delta that changes nothing (bitwise) returns the current tree and index
// unchanged — callers can detect this via DirtyLeaves == 0 and reuse their
// published snapshot wholesale.
//
// On success the engine adopts the new state; the previous tree/index remain
// valid immutable snapshots. On error the engine is unchanged and the caller
// should fall back to a full rebuild.
func (r *Recalc) Apply(deltas map[string]float64) (*Tree, *Index, RecalcStats, error) {
	st := RecalcStats{TotalLeaves: len(r.leafUsage)}
	if r.tree == nil || r.index == nil {
		return nil, nil, st, errors.New("fairshare: Recalc not initialized")
	}
	if len(r.leafUsage) != r.index.Len() {
		return nil, nil, st, fmt.Errorf("fairshare: Recalc tree/index mismatch (%d leaves vs %d entries)",
			len(r.leafUsage), r.index.Len())
	}

	// Phase 1: resolve dirty leaf positions, dropping bitwise no-ops and
	// users the policy does not know. Map iteration order does not matter:
	// every later phase re-derives values from canonical child order.
	type dirtyLeaf struct {
		pos int32
		val float64
	}
	var dirty []dirtyLeaf
	for user, val := range deltas {
		for _, p := range r.index.positions(user, r.posBuf[:0]) {
			if sameBits(r.leafUsage[p], val) {
				continue
			}
			dirty = append(dirty, dirtyLeaf{pos: p, val: val})
		}
	}
	if len(dirty) == 0 {
		return r.tree, r.index, st, nil
	}
	st.DirtyLeaves = len(dirty)

	// Phase 2: copy-on-write clone of every dirty root-to-leaf spine. Spine
	// internals get copied Children slices (their children may be swapped);
	// dirty leaves get plain struct copies carrying the new usage. Clones
	// are tagged with this pass's generation number so later phases can tell
	// them from immutable shared nodes without a map.
	r.gen = recalcGen.Add(1)
	cfg := r.tree.Config
	oldRoot := r.tree.Root
	newRoot := &Node{}
	*newRoot = *oldRoot
	newRoot.Children = append([]*Node(nil), oldRoot.Children...)
	newRoot.gen = r.gen
	st.ClonedNodes = 1
	type spineNode struct {
		n     *Node
		depth int32
	}
	spine := []spineNode{{newRoot, 0}}
	for _, d := range dirty {
		n := newRoot
		off, end := r.pathOff[d.pos], r.pathOff[d.pos+1]
		for k := off; k < end; k++ {
			ci := int(r.pathIdx[k])
			ch := n.Children[ci]
			if ch.gen != r.gen {
				nc := &Node{}
				*nc = *ch
				nc.gen = r.gen
				if k < end-1 {
					nc.Children = append([]*Node(nil), ch.Children...)
					spine = append(spine, spineNode{nc, k - off + 1})
				}
				n.Children[ci] = nc
				st.ClonedNodes++
				ch = nc
			}
			n = ch
		}
		// n is the cloned dirty leaf.
		n.Usage = d.val
	}

	// Phase 3: re-sum cloned internals' subtree usage bottom-up, folding
	// children left-to-right exactly like the full build (adding deltas to
	// the old sums would change float rounding and break bit-identity).
	// Deeper spines first so parents always fold final child values; nodes
	// at equal depth are independent.
	sort.Slice(spine, func(i, j int) bool { return spine[i].depth > spine[j].depth })
	for _, sn := range spine {
		var u float64
		for _, c := range sn.n.Children {
			u += c.Usage
		}
		sn.n.Usage = u
	}

	// Phase 4: rescore exactly the sibling groups that contain a dirty
	// node. Off-path siblings whose scored fields change (they share the
	// dirty group's usage denominator) are value-cloned shallowly — their
	// Children slice is shared, because nothing below them changed.
	for _, sn := range spine {
		r.scoreGroupCOW(sn.n, cfg, &st)
	}
	st.SharedNodes = r.nodes - st.ClonedNodes

	// Phase 5: re-materialize the index's value arenas. Every entry's vector
	// starts at the top-level group whose values all shifted with the root
	// usage denominator, so all vectors get new per-level prefixes — but the
	// identity half of the index (names, offsets, target shares, stripe and
	// duplicate maps) is shared wholesale with the previous snapshot, and the
	// new values live in three pointer-free float64/flat arenas the garbage
	// collector never scans. The arenas start as flat copies of the previous
	// snapshot's (shared suffixes come along for free); the walk then
	// overwrites only what changed, pruning at shared subtrees: their
	// contiguous leaf ranges get just the changed ancestor prefix written,
	// never touching the subtree's nodes — and nothing at all when the
	// subtree hangs directly off the root.
	old := r.index
	n := old.Len()
	vec := make([]float64, len(old.vec))
	copy(vec, old.vec)
	pu := make([]float64, len(old.pathUsage))
	copy(pu, old.pathUsage)
	lp := make([]float64, n)
	copy(lp, old.leafPrio)
	pos := 0
	ok := true
	var vecStack, usageStack []float64
	var down func(nd *Node)
	down = func(nd *Node) {
		if len(nd.Children) == 0 {
			// A cloned leaf: rewrite its whole per-level range.
			d := len(vecStack)
			if pos >= n || int(old.offs[pos+1]-old.offs[pos]) != d {
				ok = false
				return
			}
			off := int(old.offs[pos])
			copy(vec[off:off+d], vecStack)
			copy(pu[off:off+d], usageStack)
			lp[pos] = nd.Priority
			pos++
			return
		}
		for _, c := range nd.Children {
			if c.gen == r.gen {
				vecStack = append(vecStack, c.Value)
				usageStack = append(usageStack, c.UsageShare)
				down(c)
				vecStack = vecStack[:len(vecStack)-1]
				usageStack = usageStack[:len(usageStack)-1]
				continue
			}
			// Shared subtree: its entries keep their old per-level values
			// from this depth down (already in place from the flat copy);
			// only the changed ancestor prefix needs writing.
			j := len(vecStack)
			cnt := int(c.leaves)
			if pos+cnt > n {
				ok = false
				return
			}
			if j > 0 {
				for i := pos; i < pos+cnt; i++ {
					off := int(old.offs[i])
					copy(vec[off:off+j], vecStack)
					copy(pu[off:off+j], usageStack)
				}
			}
			pos += cnt
		}
	}
	down(newRoot)
	if !ok || pos != n {
		return nil, nil, st, fmt.Errorf("fairshare: incremental walk produced %d entries, index has %d", pos, n)
	}
	newIndex := &Index{
		users:     old.users,
		offs:      old.offs,
		shares:    old.shares,
		vec:       vec,
		pathUsage: pu,
		leafPrio:  lp,
		stripes:   old.stripes,
		dups:      old.dups,
	}
	newTree := &Tree{Root: newRoot, Config: cfg}

	// Commit: adopt the new state. leafUsage/path tables are positionally
	// stable because the tree structure did not change.
	for _, d := range dirty {
		r.leafUsage[d.pos] = d.val
	}
	r.tree, r.index = newTree, newIndex
	return newTree, newIndex, st, nil
}

// scoreGroupCOW rescores one sibling group with scoreGroup's exact
// arithmetic, writing results into already-cloned children directly and
// value-cloning any off-path sibling whose scored fields changed bitwise.
// Off-path clones are batched into one contiguous arena per group (one
// allocation instead of one per sibling — in a dirty group, the shifted
// usage denominator typically changes every sibling); their Children slices
// stay shared, because nothing below an off-path sibling changed.
func (r *Recalc) scoreGroupCOW(n *Node, cfg Config, st *RecalcStats) {
	st.DirtyGroups++
	// n.Usage was re-folded in phase 3 with the same left-to-right order
	// scoreGroup uses for its groupUsage, so reuse it.
	groupUsage := n.Usage
	k := cfg.DistanceWeight
	bal := cfg.Balance()
	var buf []Node
	for i, c := range n.Children {
		us := 0.0
		if groupUsage > 0 {
			us = c.Usage / groupUsage
		}
		abs := c.Share - us
		rel := 0.0
		if c.Share > 0 {
			rel = math.Max(0, math.Min(1, (c.Share-us)/c.Share))
		}
		prio := k*rel + (1-k)*abs
		v := bal * (1 + prio)
		val := math.Max(0, math.Min(cfg.Resolution-1e-9, v))
		if c.gen == r.gen {
			c.UsageShare, c.Priority, c.Value = us, prio, val
			continue
		}
		if sameBits(c.UsageShare, us) && sameBits(c.Priority, prio) && sameBits(c.Value, val) {
			continue
		}
		if buf == nil {
			// At most the remaining siblings can need cloning, so buf never
			// reallocates and the pointers handed out below stay valid.
			buf = make([]Node, 0, len(n.Children)-i)
		}
		buf = append(buf, *c)
		nc := &buf[len(buf)-1]
		nc.UsageShare, nc.Priority, nc.Value = us, prio, val
		nc.gen = r.gen
		n.Children[i] = nc
		st.ClonedNodes++
	}
}

// sameBits reports bitwise float equality (distinguishing ±0, treating any
// NaN payload as equal to itself) — the equality that matters for snapshot
// bit-identity.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
