// Package fairshare implements the Aequus fairshare calculation: given a
// hierarchical usage policy and decayed per-user historical usage, it
// computes a fairshare tree whose per-node values express how far each
// entity is from its target share. Per-user fairshare vectors are extracted
// from the tree and projected to scheduler-combinable priorities.
//
// The algorithm follows the papers' description: at every level of the
// tree, each node is compared with its siblings using a configurable blend
// of two distance metrics —
//
//	absolute: targetShare − usageShare            (∈ [share−1, share])
//	relative: (targetShare − usageShare)/target    (clamped to [0, 1])
//	priority: k·relative + (1−k)·absolute
//
// with default weight k = 0.5, "indicating that the absolute and relative
// components have equal weight". For a user with target share 0.12 this
// bounds the priority at 0.5·(1 + 0.12) = 0.56, matching the bursty-usage
// analysis in Section IV.
package fairshare

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/vector"
)

// Config parameterizes the fairshare calculation.
type Config struct {
	// DistanceWeight is k, the weight of the relative distance metric
	// (1−k weighs the absolute metric). Values outside [0,1] are clamped.
	DistanceWeight float64
	// Resolution is the fairshare value range; node values live in
	// [0, Resolution) with the balance point at Resolution/2. The paper's
	// example uses 10000 (values 0–9999).
	Resolution float64
}

// DefaultConfig mirrors the production configuration: k = 0.5, resolution
// 10000.
func DefaultConfig() Config {
	return Config{DistanceWeight: 0.5, Resolution: 10000}
}

func (c Config) normalized() Config {
	if c.Resolution <= 0 {
		c.Resolution = 10000
	}
	c.DistanceWeight = math.Max(0, math.Min(1, c.DistanceWeight))
	return c
}

// Balance returns the balance-point value (the centre of the value range).
func (c Config) Balance() float64 { return c.normalized().Resolution / 2 }

// Node is one entry of the computed fairshare tree.
type Node struct {
	// Name is the policy node name.
	Name string
	// Share is the normalized target share within the sibling group.
	Share float64
	// Usage is the decayed historical usage of the subtree (core-seconds).
	Usage float64
	// UsageShare is the subtree's fraction of its sibling group's usage.
	UsageShare float64
	// Priority is k·rel + (1−k)·abs (see package comment).
	Priority float64
	// Value is Priority mapped into [0, Resolution) with balance at the
	// centre.
	Value float64
	// Children are the sub-entities.
	Children []*Node
	// leaves counts the leaves in this subtree (1 for a leaf). It is filled
	// at build time so index construction and the incremental Recalc engine
	// can partition entry ranges without re-walking the tree.
	leaves int32
	// gen tags nodes cloned by one Recalc.Apply pass (generation numbers are
	// process-unique), letting the engine distinguish this pass's mutable
	// clones from immutable shared nodes without a map. Zero on nodes built
	// by Compute.
	gen uint64
}

// Tree is a computed fairshare tree.
type Tree struct {
	Root   *Node
	Config Config
}

// parallelComputeThreshold is the tree size (node count) above which Compute
// scores top-level sibling subtrees concurrently. Small trees stay serial:
// goroutine setup would dominate the arithmetic.
const parallelComputeThreshold = 4096

// Compute builds the fairshare tree for a policy and decayed per-user usage
// (keyed by leaf user name). This is the pre-calculation the FCS performs
// periodically so that "no real-time calculations need to take place when
// new jobs arrive". Large policies are scored in parallel across the root's
// sibling subtrees — each sibling group is independent once its parent's
// usage totals are fixed.
func Compute(p *policy.Tree, usage map[string]float64, cfg Config) *Tree {
	cfg = cfg.normalized()
	root, nodes := buildTree(p.Root, usage)
	root.Share = 1
	root.UsageShare = 1
	root.Priority = 0
	root.Value = cfg.Balance()
	scoreGroup(root, cfg)
	if nodes >= parallelComputeThreshold && len(root.Children) > 1 {
		var wg sync.WaitGroup
		for _, c := range root.Children {
			wg.Add(1)
			go func(c *Node) {
				defer wg.Done()
				scoreDescendants(c, cfg)
			}(c)
		}
		wg.Wait()
	} else {
		for _, c := range root.Children {
			scoreDescendants(c, cfg)
		}
	}
	return &Tree{Root: root, Config: cfg}
}

// buildTree builds the scored-tree skeleton from the raw policy, normalizing
// sibling shares inline with exactly policy.Normalize's arithmetic (each
// child's share divided by the left-to-right sum of its group's raw shares,
// iff that sum is positive). Folding the normalization into the build avoids
// the full policy clone Normalize performs. Large trees build their top-level
// subtrees in parallel; the root's usage fold stays serial and left-to-right
// so results are bitwise independent of scheduling.
func buildTree(pn *policy.Node, usage map[string]float64) (*Node, int) {
	if len(usage) < parallelComputeThreshold || len(pn.Children) < 2 {
		return buildNorm(pn, pn.Share, usage)
	}
	n := &Node{Name: pn.Name, Share: pn.Share}
	var sum float64
	for _, pc := range pn.Children {
		sum += pc.Share
	}
	n.Children = make([]*Node, len(pn.Children))
	counts := make([]int, len(pn.Children))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pn.Children) {
		workers = len(pn.Children)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pn.Children) {
					return
				}
				pc := pn.Children[i]
				cs := pc.Share
				if sum > 0 {
					cs = pc.Share / sum
				}
				n.Children[i], counts[i] = buildNorm(pc, cs, usage)
			}
		}()
	}
	wg.Wait()
	nodes := 1
	for i, c := range n.Children {
		n.Usage += c.Usage
		n.leaves += c.leaves
		nodes += counts[i]
	}
	return n, nodes
}

// buildNorm copies the policy structure with inline share normalization and
// accumulates subtree usage, returning the subtree's node count. share is the
// node's already-normalized share within its sibling group.
func buildNorm(pn *policy.Node, share float64, usage map[string]float64) (*Node, int) {
	n := &Node{Name: pn.Name, Share: share}
	if len(pn.Children) == 0 {
		n.Usage = usage[pn.Name]
		n.leaves = 1
		return n, 1
	}
	var sum float64
	for _, pc := range pn.Children {
		sum += pc.Share
	}
	nodes := 1
	n.Children = make([]*Node, 0, len(pn.Children))
	for _, pc := range pn.Children {
		cs := pc.Share
		if sum > 0 {
			cs = pc.Share / sum
		}
		c, cn := buildNorm(pc, cs, usage)
		n.Children = append(n.Children, c)
		n.Usage += c.Usage
		n.leaves += c.leaves
		nodes += cn
	}
	return n, nodes
}

// scoreGroup computes usage shares, priorities and values for n's immediate
// children (one sibling group), without recursing.
func scoreGroup(n *Node, cfg Config) {
	var groupUsage float64
	for _, c := range n.Children {
		groupUsage += c.Usage
	}
	k := cfg.DistanceWeight
	for _, c := range n.Children {
		if groupUsage > 0 {
			c.UsageShare = c.Usage / groupUsage
		} else {
			c.UsageShare = 0
		}
		abs := c.Share - c.UsageShare
		rel := 0.0
		if c.Share > 0 {
			rel = math.Max(0, math.Min(1, (c.Share-c.UsageShare)/c.Share))
		}
		c.Priority = k*rel + (1-k)*abs
		// Priority ∈ [−1, 1]; map linearly so 0 lands on the balance point.
		v := cfg.Balance() * (1 + c.Priority)
		c.Value = math.Max(0, math.Min(cfg.Resolution-1e-9, v))
	}
}

// scoreDescendants scores every sibling group in n's subtree, including n's
// own children.
func scoreDescendants(n *Node, cfg Config) {
	scoreGroup(n, cfg)
	for _, c := range n.Children {
		scoreDescendants(c, cfg)
	}
}

// lookupPath returns the chain of nodes from the first level below the root
// down to the (first) leaf named user, or nil.
func (t *Tree) lookupPath(user string) []*Node {
	var found []*Node
	var walk func(n *Node, path []*Node) bool
	walk = func(n *Node, path []*Node) bool {
		if len(n.Children) == 0 {
			if n.Name == user && len(path) > 0 {
				found = append([]*Node(nil), path...)
				return true
			}
			return false
		}
		for _, c := range n.Children {
			if walk(c, append(path, c)) {
				return true
			}
		}
		return false
	}
	walk(t.Root, nil)
	return found
}

// Vector extracts the fairshare vector of a user: the node values along the
// path from the root down to the user's leaf.
func (t *Tree) Vector(user string) (vector.Vector, bool) {
	path := t.lookupPath(user)
	if path == nil {
		return nil, false
	}
	v := make(vector.Vector, len(path))
	for i, n := range path {
		v[i] = n.Value
	}
	return v, true
}

// Depth returns the maximum leaf depth below the root.
func (t *Tree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		best := 0
		for _, c := range n.Children {
			if d := walk(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	return walk(t.Root)
}

// Entries returns one projection entry per leaf user: vector plus the
// per-level policy and usage shares. Every entry owns its slices — nothing
// aliases the walk's scratch stacks or any other entry, so callers may
// retain or mutate entries freely.
func (t *Tree) Entries() []vector.Entry {
	var out []vector.Entry
	walkLeaves(t.Root, func(n *Node, vec vector.Vector, shares, usages []float64) {
		out = append(out, vector.Entry{
			User:       n.Name,
			Vec:        vec.Clone(),
			PathShares: append([]float64(nil), shares...),
			PathUsage:  append([]float64(nil), usages...),
		})
	})
	return out
}

// walkLeaves visits every leaf below the root in DFS order, passing the path
// state (values, target shares, usage shares from the first level below the
// root down to the leaf). The slices handed to fn are scratch stacks reused
// across leaves: fn must copy anything it retains. Maintaining one explicit
// push/pop stack per quantity keeps the walk safe by construction — the old
// per-call `append(vec, …)` pattern shared backing arrays across sibling
// iterations and was only correct because each leaf cloned before the next
// sibling's append overwrote the slot.
func walkLeaves(root *Node, fn func(leaf *Node, vec vector.Vector, shares, usages []float64)) {
	var vec vector.Vector
	var shares, usages []float64
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			if len(vec) > 0 {
				fn(n, vec, shares, usages)
			}
			return
		}
		for _, c := range n.Children {
			vec = append(vec, c.Value)
			shares = append(shares, c.Share)
			usages = append(usages, c.UsageShare)
			walk(c)
			vec = vec[:len(vec)-1]
			shares = shares[:len(shares)-1]
			usages = usages[:len(usages)-1]
		}
	}
	walk(root)
}

// UsageByLeaf returns the absolute decayed usage of every leaf, keyed by
// leaf name — the usage map a from-scratch Compute needs to reproduce this
// tree. Duplicate leaf names are harmless: Compute feeds every same-named
// leaf the same usage value, so the map is well-defined.
func (t *Tree) UsageByLeaf() map[string]float64 {
	out := make(map[string]float64, leafCount(t.Root))
	walkLeaves(t.Root, func(n *Node, _ vector.Vector, _, _ []float64) {
		out[n.Name] = n.Usage
	})
	return out
}

// Priorities projects every user's fairshare vector to a scalar in [0,1]
// with the given projection algorithm.
func (t *Tree) Priorities(proj vector.Projection) map[string]float64 {
	return proj.Project(t.Entries(), t.Config.Resolution)
}

// LeafPriority returns the raw (unprojected) leaf priority of a user — the
// quantity plotted in the paper's per-user priority figures — and whether
// the user exists.
func (t *Tree) LeafPriority(user string) (float64, bool) {
	path := t.lookupPath(user)
	if path == nil {
		return 0, false
	}
	return path[len(path)-1].Priority, true
}

// Lookup returns a user's fairshare vector and raw leaf priority from a
// single tree walk — callers needing both must not pay for two
// (Vector + LeafPriority each repeat the same depth-first search).
func (t *Tree) Lookup(user string) (vector.Vector, float64, bool) {
	path := t.lookupPath(user)
	if path == nil {
		return nil, 0, false
	}
	v := make(vector.Vector, len(path))
	for i, n := range path {
		v[i] = n.Value
	}
	return v, path[len(path)-1].Priority, true
}

// Find returns the node at the given policy path.
func (t *Tree) Find(path string) (*Node, bool) {
	parts := policy.SplitPath(path)
	n := t.Root
	for _, p := range parts {
		var next *Node
		for _, c := range n.Children {
			if c.Name == p {
				next = c
				break
			}
		}
		if next == nil {
			return nil, false
		}
		n = next
	}
	return n, true
}

// MaxPriority returns the theoretical maximum leaf priority for a user with
// the given target share under config cfg: k·1 + (1−k)·share. For the
// bursty test's U3 (share 0.12, k 0.5) this is 0.56.
func MaxPriority(cfg Config, share float64) float64 {
	cfg = cfg.normalized()
	k := cfg.DistanceWeight
	return k + (1-k)*share
}
