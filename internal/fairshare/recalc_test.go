package fairshare

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/policy"
)

// randomPolicy builds a random 1–3 level policy with unique leaf names and
// returns it plus the leaf name list.
func randomPolicy(rng *rand.Rand) (*policy.Tree, []string) {
	t := policy.NewTree()
	var leaves []string
	groups := 1 + rng.Intn(4)
	uid := 0
	for g := 0; g < groups; g++ {
		gname := fmt.Sprintf("g%d", g)
		if _, err := t.Add("", gname, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
		// Some groups get a nested subgroup layer.
		nested := rng.Intn(2) == 0
		users := 1 + rng.Intn(4)
		for u := 0; u < users; u++ {
			parent := "/" + gname
			if nested && rng.Intn(2) == 0 {
				sub := "sub" + fmt.Sprint(u%2)
				if _, err := t.Lookup(parent + "/" + sub); err != nil {
					if _, err := t.Add(parent, sub, 1+rng.Float64()*3); err != nil {
						panic(err)
					}
				}
				parent = parent + "/" + sub
			}
			name := fmt.Sprintf("u%d", uid)
			uid++
			if _, err := t.Add(parent, name, 1+rng.Float64()*5); err != nil {
				panic(err)
			}
			leaves = append(leaves, name)
		}
	}
	return t, leaves
}

func compareNodes(t *testing.T, got, want *Node, path string) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("%s: name %q vs %q", path, got.Name, want.Name)
	}
	type f struct {
		name string
		g, w float64
	}
	for _, c := range []f{
		{"Share", got.Share, want.Share},
		{"Usage", got.Usage, want.Usage},
		{"UsageShare", got.UsageShare, want.UsageShare},
		{"Priority", got.Priority, want.Priority},
		{"Value", got.Value, want.Value},
	} {
		if math.Float64bits(c.g) != math.Float64bits(c.w) {
			t.Fatalf("%s/%s: %s = %v (bits %x), want %v (bits %x)",
				path, got.Name, c.name, c.g, math.Float64bits(c.g), c.w, math.Float64bits(c.w))
		}
	}
	if len(got.Children) != len(want.Children) {
		t.Fatalf("%s/%s: %d children, want %d", path, got.Name, len(got.Children), len(want.Children))
	}
	for i := range got.Children {
		compareNodes(t, got.Children[i], want.Children[i], path+"/"+got.Name)
	}
}

func compareIndexes(t *testing.T, got, want *Index) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("index lengths differ: %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.At(i), want.At(i)
		if g.User != w.User {
			t.Fatalf("entry %d: user %q vs %q", i, g.User, w.User)
		}
		if math.Float64bits(g.LeafPriority) != math.Float64bits(w.LeafPriority) {
			t.Fatalf("entry %d (%s): leaf priority %v vs %v", i, g.User, g.LeafPriority, w.LeafPriority)
		}
		compareFloatSlices(t, fmt.Sprintf("entry %d (%s) Vec", i, g.User), g.Vec, w.Vec)
		compareFloatSlices(t, fmt.Sprintf("entry %d (%s) PathShares", i, g.User), g.PathShares, w.PathShares)
		compareFloatSlices(t, fmt.Sprintf("entry %d (%s) PathUsage", i, g.User), g.PathUsage, w.PathUsage)
	}
	// Lookup agreement for every user present in the reference.
	for i := 0; i < want.Len(); i++ {
		u := want.At(i).User
		gp, gok := got.Pos(u)
		wp, wok := want.Pos(u)
		if gok != wok || gp != wp {
			t.Fatalf("Pos(%q): got (%d,%v) want (%d,%v)", u, gp, gok, wp, wok)
		}
	}
}

func compareFloatSlices(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v (bits %x) vs %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestRecalcMatchesFullRecompute is the bit-identity property test: over
// random policies, usage maps and delta sequences, the incremental engine
// must produce trees and indexes bitwise identical to a from-scratch
// Compute+NewIndex on the merged usage.
func TestRecalcMatchesFullRecompute(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, leaves := randomPolicy(rng)
		usage := map[string]float64{}
		for _, u := range leaves {
			if rng.Intn(3) > 0 {
				usage[u] = rng.Float64() * 1000
			}
		}
		cfg := Config{DistanceWeight: rng.Float64(), Resolution: 10000}
		tree := Compute(p, usage, cfg)
		ix := NewIndex(tree)
		eng := NewRecalc(tree, ix)

		for step := 0; step < 6; step++ {
			delta := map[string]float64{}
			for _, u := range leaves {
				switch rng.Intn(5) {
				case 0: // change
					delta[u] = rng.Float64() * 1000
				case 1: // zero out (user aged fully away)
					delta[u] = 0
				case 2: // bitwise no-op: resend the current value
					delta[u] = usage[u]
				}
			}
			if rng.Intn(2) == 0 {
				delta["nosuchuser"] = rng.Float64() // unknown users are ignored
			}
			for u, v := range delta {
				usage[u] = v
			}
			gotTree, gotIx, _, err := eng.Apply(delta)
			if err != nil {
				t.Fatalf("seed %d step %d: Apply: %v", seed, step, err)
			}
			wantTree := Compute(p, usage, cfg)
			wantIx := NewIndex(wantTree)
			compareNodes(t, gotTree.Root, wantTree.Root, "")
			compareIndexes(t, gotIx, wantIx)
		}
	}
}

// TestRecalcEmptyDeltaReturnsSameSnapshot pins the wholesale-reuse contract:
// deltas that change nothing bitwise return the engine's current tree and
// index pointers with zero dirty leaves.
func TestRecalcEmptyDeltaReturnsSameSnapshot(t *testing.T) {
	p, usage := buildWide(3, 4)
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	for _, delta := range []map[string]float64{
		{},
		nil,
		{"u000_000": usage["u000_000"]}, // bitwise no-op
		{"ghost": 42},                   // unknown user
	} {
		gotTree, gotIx, st, err := eng.Apply(delta)
		if err != nil {
			t.Fatalf("Apply(%v): %v", delta, err)
		}
		if gotTree != tree || gotIx != ix {
			t.Fatalf("Apply(%v) built new snapshot, want wholesale reuse", delta)
		}
		if st.DirtyLeaves != 0 {
			t.Fatalf("Apply(%v): DirtyLeaves = %d, want 0", delta, st.DirtyLeaves)
		}
	}
}

// TestRecalcDoesNotMutatePriorSnapshot pins immutability: applying a delta
// must leave the previous tree and index bitwise untouched (published
// snapshots are read lock-free).
func TestRecalcDoesNotMutatePriorSnapshot(t *testing.T) {
	p, usage := buildWide(4, 5)
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)

	// Deep copies of the original state for later comparison.
	wantTree := Compute(p, usage, cfg)
	wantIx := NewIndex(wantTree)

	eng := NewRecalc(tree, ix)
	if _, _, _, err := eng.Apply(map[string]float64{"u001_002": 1e6, "u003_000": 0.5}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	compareNodes(t, tree.Root, wantTree.Root, "")
	compareIndexes(t, ix, wantIx)
}

// TestRecalcSharesUntouchedSubtrees verifies the structural-sharing claim:
// after a single-user delta, sibling subtrees off the dirty path are
// pointer-shared with the previous tree.
func TestRecalcSharesUntouchedSubtrees(t *testing.T) {
	p, usage := buildWide(6, 8)
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	newTree, _, st, err := eng.Apply(map[string]float64{"u002_003": usage["u002_003"] + 7})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.DirtyLeaves != 1 {
		t.Fatalf("DirtyLeaves = %d, want 1", st.DirtyLeaves)
	}
	if st.SharedNodes == 0 {
		t.Fatalf("no structural sharing: %+v", st)
	}
	// The dirty group's grandchildren (children of untouched top-level
	// groups) must be pointer-identical to the old tree's.
	shared := 0
	for i, c := range newTree.Root.Children {
		old := tree.Root.Children[i]
		if c == old {
			shared++
			continue
		}
		// Value-cloned or spine node: its Children slice may still be shared.
		for j := range c.Children {
			if c.Children[j] == old.Children[j] {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("no subtree pointers shared across Apply")
	}
}

// TestRecalcDuplicateLeafNames pins the degenerate duplicate-name case: a
// delta for a duplicated name dirties every leaf carrying it, matching the
// full recompute (which feeds usage[name] to all of them).
func TestRecalcDuplicateLeafNames(t *testing.T) {
	p := policy.NewTree()
	for _, gname := range []string{"a", "b"} {
		if _, err := p.Add("", gname, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]string{{"a", "dup"}, {"a", "x"}, {"b", "dup"}, {"b", "y"}} {
		if _, err := p.Add("/"+pair[0], pair[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	usage := map[string]float64{"dup": 10, "x": 5, "y": 2}
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	usage["dup"] = 25
	gotTree, gotIx, st, err := eng.Apply(map[string]float64{"dup": 25})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.DirtyLeaves != 2 {
		t.Fatalf("DirtyLeaves = %d, want 2 (both dup leaves)", st.DirtyLeaves)
	}
	wantTree := Compute(p, usage, cfg)
	compareNodes(t, gotTree.Root, wantTree.Root, "")
	compareIndexes(t, gotIx, NewIndex(wantTree))
}

// TestRecalcLargeTreeParallelBuild runs one delta round on a tree past the
// parallel build threshold, so the parallel Compute/NewIndex paths feed the
// engine and the bit-identity property holds across them too.
func TestRecalcLargeTreeParallelBuild(t *testing.T) {
	p, usage := buildWide(80, 80) // 6400 leaves ≥ parallelComputeThreshold
	cfg := DefaultConfig()
	tree := Compute(p, usage, cfg)
	ix := NewIndex(tree)
	eng := NewRecalc(tree, ix)

	usage["u040_017"] += 123.5
	usage["u079_000"] = 0
	gotTree, gotIx, st, err := eng.Apply(map[string]float64{
		"u040_017": usage["u040_017"],
		"u079_000": 0,
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.DirtyLeaves != 2 {
		t.Fatalf("DirtyLeaves = %d, want 2", st.DirtyLeaves)
	}
	if st.ClonedNodes >= st.SharedNodes {
		t.Fatalf("expected overwhelming structural sharing, got %+v", st)
	}
	wantTree := Compute(p, usage, cfg)
	compareNodes(t, gotTree.Root, wantTree.Root, "")
	compareIndexes(t, gotIx, NewIndex(wantTree))

	// Index lookups on the incremental index still resolve every user.
	for u := range usage {
		if _, ok := gotIx.Lookup(u); !ok {
			t.Fatalf("user %q missing from incremental index", u)
		}
	}
}
