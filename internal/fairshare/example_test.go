package fairshare_test

import (
	"fmt"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/vector"
)

// ExampleCompute shows the core calculation: a flat policy, historical
// usage, and the resulting projected priorities.
func ExampleCompute() {
	pol, _ := policy.FromShares(map[string]float64{
		"alice": 0.6,
		"bob":   0.4,
	})
	usage := map[string]float64{"alice": 100, "bob": 900}
	tree := fairshare.Compute(pol, usage, fairshare.DefaultConfig())

	prio := tree.Priorities(vector.Percental{})
	fmt.Printf("alice %.3f\n", prio["alice"])
	fmt.Printf("bob   %.3f\n", prio["bob"])
	// Output:
	// alice 0.750
	// bob   0.250
}

// ExampleTree_Vector extracts a user's fairshare vector with balance-point
// padding, like /LQ in the paper's Figure 3.
func ExampleTree_Vector() {
	pol := policy.NewTree()
	pol.Add("", "lq", 1)
	pol.Add("", "grid", 3)
	pol.Add("/grid", "u1", 1)
	pol.Add("/grid", "u2", 1)

	tree := fairshare.Compute(pol, map[string]float64{
		"lq": 0, "u1": 50, "u2": 50,
	}, fairshare.DefaultConfig())

	v, _ := tree.Vector("lq")
	fmt.Println(v.PadTo(tree.Depth(), tree.Config.Balance()))
	// Output:
	// 8125:5000
}

// ExampleMaxPriority reproduces the paper's bursty-test bound: a user with
// target share 0.12 under k = 0.5 cannot exceed priority 0.56.
func ExampleMaxPriority() {
	bound := fairshare.MaxPriority(fairshare.DefaultConfig(), 0.12)
	fmt.Printf("%.2f\n", bound)
	// Output:
	// 0.56
}
