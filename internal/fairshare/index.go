package fairshare

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/vector"
)

// IndexEntry is one user's fully resolved serving record: the projection
// entry (vector, per-level target and usage shares) plus the raw leaf
// priority. Entries are composed on the fly from the index's arenas; the
// embedded slices alias immutable index storage, so they can be handed out
// without copying but must not be mutated.
type IndexEntry struct {
	vector.Entry
	// LeafPriority is the raw (unprojected) priority of the user's leaf.
	LeafPriority float64
}

// EntryView is the composition-free view of one entry, split along the
// segment seam: the level-0 vector/usage values are interned once per
// top-level subtree (head), the deeper levels live in the segment's tail
// arenas. Folding head then tail left-to-right reproduces the exact float
// sequence of the flat full-depth arena (the values are bit-identical, only
// the storage is factored), so pointwise projections and drift sums can run
// off a View without ever materializing the composed per-entry slices.
type EntryView struct {
	// User is the leaf name.
	User string
	// HeadVec/HeadUsage are the entry's level-0 vector element and usage
	// share — shared by every leaf of the same top-level subtree.
	HeadVec   float64
	HeadUsage float64
	// PathShares is the full per-level target-share slice (identity data,
	// stable across refreshes).
	PathShares []float64
	// TailVec/TailUsage are levels 1..depth-1 of the vector and usage path.
	// Empty for leaves hanging directly off the root.
	TailVec   []float64
	TailUsage []float64
	// LeafPriority is the raw (unprojected) priority of the user's leaf.
	LeafPriority float64
}

// indexStripes is the number of hash stripes the user→position map is split
// into. Striping lets full index rebuilds populate the map from several
// goroutines without a global lock, and keeps per-map sizes (and therefore
// rehash pauses) bounded at the 1M-user scale.
const indexStripes = 16

// segMeta is one segment's contiguous leaf range [lo, hi) in entry-position
// order. Segment s covers exactly the leaves of the root's s-th child, so
// segment ids double as top-level child indexes.
type segMeta struct {
	lo, hi int32
}

// segTail holds one segment's per-snapshot suffix values: for every leaf of
// the segment in DFS order, the vector and usage-share elements BELOW the
// interned level-0 head (levels 1..depth-1, flattened back to back), plus
// the raw leaf priorities. A tail is immutable once published; incremental
// rebuilds share untouched segments' tails by pointer.
type segTail struct {
	vec      []float64
	usage    []float64
	leafPrio []float64
}

// composedSeg is the lazily materialized full-depth (head ⊕ tail) arena pair
// for one segment, built on first At() access and cached for the life of the
// snapshot. done uses acquire/release semantics: it is stored only after vec
// and usage are fully written, so lock-free readers that observe done==true
// see complete arenas. Never copy a composedSeg (it embeds a Mutex); access
// elements of Index.comp by pointer only.
type composedSeg struct {
	done atomic.Bool
	mu   sync.Mutex
	vec  []float64
	// usage is the composed per-level usage-share arena.
	usage []float64
}

// Index is an immutable O(1) lookup table over a fairshare tree's leaves.
// It is what lets the FCS serve `Priority()` without walking the tree: "no
// real-time calculations need to take place when new jobs arrive". An Index
// is safe for concurrent use by any number of readers because construction
// publishes only immutable state (the lazy composed-segment and projection
// views are built under their own synchronization).
//
// Storage is split in two along the incremental-recalc seam:
//
//   - The identity half — user names, per-entry arena offsets, target
//     shares, the segment table, the sharded user→position maps and the
//     duplicate table — depends only on the policy topology, so incremental
//     rebuilds (see Recalc) share it wholesale with the previous index.
//   - The value half — what a usage delta changes — is segmented along
//     top-level subtrees: each segment interns its single level-0
//     (vector, usage) prefix in headVec/headUsage and keeps only the deeper
//     levels in a per-segment tail. A refresh that leaves a subtree's
//     leaves untouched re-publishes that segment as one pointer copy plus
//     two interned floats instead of re-writing depth floats per leaf —
//     the mechanism that takes phase 5 of an incremental recalc from
//     O(users·depth) to O(dirty + segments).
//
// Every leaf under one top-level child shares that child's scored values as
// its level-0 prefix (walkSubtree starts its path stacks at the child), so
// interning loses nothing: composing head ⊕ tail yields bit-identical floats
// to the flat arenas the index used to hold.
type Index struct {
	// users[i] is the leaf name at entry position i (DFS order).
	users []string
	// offs[i] is the start of entry i's per-level values in full-depth
	// arena coordinates (level 0 included); entry i spans
	// [offs[i], offs[i+1]) and its depth is the difference.
	// len(offs) == len(users)+1. Tail arenas use the same coordinates minus
	// one slot per leaf — see tailSpan.
	offs []int32
	// shares holds every entry's normalized target shares, flattened per
	// offs. Target shares change only with the policy, never with usage.
	shares []float64
	// segs[s] is segment s's leaf range; segOf[i] is the segment of entry i.
	segs  []segMeta
	segOf []int32

	// headVec/headUsage intern each segment's level-0 vector element and
	// usage share (the root child's scored Value/UsageShare); tails hold the
	// deeper levels. Together they are the per-snapshot value half.
	headVec   []float64
	headUsage []float64
	tails     []*segTail

	// comp caches per-segment composed full-depth arenas for At(). Built
	// lazily so refresh-path consumers (View-based projections, drift) never
	// pay for composition; serving-path Table/At callers build each segment
	// at most once per snapshot.
	comp []composedSeg

	// stripes[hash(user)%indexStripes] maps a user name to its first entry
	// position in DFS order (matching Tree.Vector / Tree.LeafPriority, which
	// return the first leaf with that name when a degenerate policy repeats
	// names across groups).
	stripes [indexStripes]map[string]int32
	// dups holds, for names appearing on more than one leaf, every position
	// (including the first) in ascending DFS order. Nil when all names are
	// unique — the common case.
	dups map[string][]int32
	// projEntries is a lazily built []vector.Entry view over the arenas,
	// sharing their storage, so projections run without re-walking or
	// re-copying. Lazy because pointwise projections never need it.
	projOnce    sync.Once
	projEntries []vector.Entry
}

// stripeOf hashes a user name (FNV-1a) onto a stripe without allocating.
func stripeOf(name string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return uint32(h % indexStripes)
}

// NewIndex builds the segmented index for a computed tree. Small trees walk
// the root's subtrees serially; large trees split them into contiguous
// chunks of roughly equal leaf count (the per-node leaf counts cached at
// build time give exact offsets) and build arena sections plus per-chunk
// stripe maps in parallel, merging the stripe maps deterministically
// afterwards. Either way the layout is identical: one segment per top-level
// child, with the child's scored values interned as the segment head.
func NewIndex(t *Tree) *Index {
	root := t.Root
	n := leafCount(root)
	ix := &Index{}
	bases := ix.initLayout(root, n)
	if n >= parallelComputeThreshold && len(root.Children) > 1 {
		ix.buildParallel(root, n, bases)
		return ix
	}
	for s := range ix.stripes {
		ix.stripes[s] = make(map[string]int32)
	}
	for s, c := range root.Children {
		ix.fillSegment(s, c, bases, ix.addPos)
	}
	return ix
}

// initLayout sizes the identity and value halves from an integer-only
// pre-pass over the root's children: segment boundaries, arena extents and
// head/tail allocations, everything except the values themselves. It
// returns each segment's full-depth arena base (len S+1, last element the
// total arena size) — passed around explicitly rather than read back out of
// offs, so parallel segment fills never read a boundary offset another
// goroutine is writing.
func (ix *Index) initLayout(root *Node, n int) []int32 {
	S := len(root.Children)
	ix.users = make([]string, n)
	ix.offs = make([]int32, n+1)
	ix.segOf = make([]int32, n)
	ix.segs = make([]segMeta, S)
	ix.headVec = make([]float64, S)
	ix.headUsage = make([]float64, S)
	ix.tails = make([]*segTail, S)
	ix.comp = make([]composedSeg, S)
	bases := make([]int32, S+1)
	lo := int32(0)
	for s, c := range root.Children {
		bases[s+1] = bases[s] + int32(subtreeDepthSum(c, 1))
		ix.segs[s] = segMeta{lo: lo, hi: lo + c.leaves}
		lo += c.leaves
	}
	ix.shares = make([]float64, bases[S])
	return bases
}

// fillSegment walks one top-level subtree and writes segment s's slice of
// the identity arenas (users, offs, shares, segOf) plus its head and a
// freshly allocated tail. addPos receives each (name, position) in DFS
// order — the serial build passes ix.addPos, the parallel build a
// chunk-local recorder.
func (ix *Index) fillSegment(s int, c *Node, bases []int32, addPos func(name string, pos int32)) {
	m := ix.segs[s]
	nLeaves := int(m.hi - m.lo)
	ai := int(bases[s]) // full-depth arena cursor
	full := int(bases[s+1] - bases[s])
	tail := &segTail{
		vec:      make([]float64, full-nLeaves),
		usage:    make([]float64, full-nLeaves),
		leafPrio: make([]float64, nLeaves),
	}
	ix.tails[s] = tail
	ix.headVec[s] = c.Value
	ix.headUsage[s] = c.UsageShare
	pos := int(m.lo)
	ti := 0
	walkSubtree(c, func(nd *Node, vec vector.Vector, shares, usages []float64) {
		d := len(vec)
		copy(ix.shares[ai:ai+d], shares)
		copy(tail.vec[ti:ti+d-1], vec[1:])
		copy(tail.usage[ti:ti+d-1], usages[1:])
		ti += d - 1
		ai += d
		ix.users[pos] = nd.Name
		tail.leafPrio[pos-int(m.lo)] = nd.Priority
		ix.offs[pos+1] = int32(ai)
		ix.segOf[pos] = int32(s)
		addPos(nd.Name, int32(pos))
		pos++
	})
}

// addPos records a leaf position for a name: first occurrence wins the
// stripe map, later ones go to the duplicate table.
func (ix *Index) addPos(name string, pos int32) {
	m := ix.stripes[stripeOf(name)]
	if first, dup := m[name]; dup {
		if ix.dups == nil {
			ix.dups = make(map[string][]int32)
		}
		if len(ix.dups[name]) == 0 {
			ix.dups[name] = append(ix.dups[name], first)
		}
		ix.dups[name] = append(ix.dups[name], pos)
		return
	}
	m[name] = pos
}

// subtreeDepthSum returns the summed root-to-leaf path length over every
// leaf of the subtree, with the subtree's own node at the given level — the
// arena space the subtree's entries occupy.
func subtreeDepthSum(n *Node, level int) int {
	if len(n.Children) == 0 {
		return level
	}
	s := 0
	for _, c := range n.Children {
		s += subtreeDepthSum(c, level+1)
	}
	return s
}

// buildParallel partitions the root's children into contiguous chunks of
// roughly equal leaf count, fills each chunk's segments and local stripe
// maps concurrently, then merges the stripe maps. Entry order, segment
// layout, first-wins positions and duplicate tables are bitwise identical
// to the serial build. Requires initLayout to have run.
func (ix *Index) buildParallel(root *Node, n int, bases []int32) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(root.Children) {
		workers = len(root.Children)
	}
	// Chunk boundaries: greedy fill to ~n/workers leaves per chunk.
	type chunk struct {
		firstChild, lastChild int // child index range [first, last)
	}
	var chunks []chunk
	target := (n + workers - 1) / workers
	acc, first := 0, 0
	for i, c := range root.Children {
		acc += int(c.leaves)
		if acc >= target || i == len(root.Children)-1 {
			chunks = append(chunks, chunk{firstChild: first, lastChild: i + 1})
			acc = 0
			first = i + 1
		}
	}
	type local struct {
		stripes [indexStripes]map[string]int32
		// extra holds positions whose name already had a smaller position
		// within this chunk (in-chunk duplicates).
		extra []int32
	}
	locals := make([]local, len(chunks))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for i := range chunks {
		go func(i int) {
			defer wg.Done()
			ck := chunks[i]
			lc := &locals[i]
			for s := range lc.stripes {
				lc.stripes[s] = make(map[string]int32)
			}
			for child := ck.firstChild; child < ck.lastChild; child++ {
				ix.fillSegment(child, root.Children[child], bases, func(name string, pos int32) {
					m := lc.stripes[stripeOf(name)]
					if _, dup := m[name]; dup {
						lc.extra = append(lc.extra, pos)
					} else {
						m[name] = pos
					}
				})
			}
		}(i)
	}
	wg.Wait()

	// Merge: chunks in ascending order so the smallest position wins each
	// name; collisions (cross-chunk repeats) and in-chunk extras become
	// duplicate-table entries.
	var conflicts []int32
	for s := 0; s < indexStripes; s++ {
		merged := make(map[string]int32)
		for ci := range locals {
			for name, pos := range locals[ci].stripes[s] {
				if _, ok := merged[name]; ok {
					conflicts = append(conflicts, pos)
				} else {
					merged[name] = pos
				}
			}
		}
		ix.stripes[s] = merged
	}
	for ci := range locals {
		conflicts = append(conflicts, locals[ci].extra...)
	}
	if len(conflicts) > 0 {
		ix.dups = make(map[string][]int32)
		for _, pos := range conflicts {
			name := ix.users[pos]
			if len(ix.dups[name]) == 0 {
				// Seed with the winning first position.
				ix.dups[name] = append(ix.dups[name], ix.stripes[stripeOf(name)][name])
			}
			ix.dups[name] = append(ix.dups[name], pos)
		}
		for name := range ix.dups {
			ps := ix.dups[name]
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		}
	}
}

// leafCount returns the number of index entries a tree yields: the cached
// per-subtree leaf counts summed over the root's children (a childless root
// produces no entries, matching walkLeaves).
func leafCount(root *Node) int {
	n := 0
	for _, c := range root.Children {
		n += int(c.leaves)
	}
	return n
}

// walkSubtree visits every leaf of a top-level subtree in DFS order with the
// same path-state semantics as walkLeaves (the stacks start at c's level).
// Used to fill segments, in parallel for large trees.
func walkSubtree(c *Node, fn func(leaf *Node, vec vector.Vector, shares, usages []float64)) {
	vec := vector.Vector{c.Value}
	shares := []float64{c.Share}
	usages := []float64{c.UsageShare}
	if len(c.Children) == 0 {
		fn(c, vec, shares, usages)
		return
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			fn(n, vec, shares, usages)
			return
		}
		for _, ch := range n.Children {
			vec = append(vec, ch.Value)
			shares = append(shares, ch.Share)
			usages = append(usages, ch.UsageShare)
			walk(ch)
			vec = vec[:len(vec)-1]
			shares = shares[:len(shares)-1]
			usages = usages[:len(usages)-1]
		}
	}
	walk(c)
}

// Index builds the serving index for the tree. Equivalent to NewIndex(t).
func (t *Tree) Index() *Index { return NewIndex(t) }

// Pos returns the entry position for a user (the first leaf in DFS order
// when the name is duplicated) without allocating.
func (ix *Index) Pos(user string) (int, bool) {
	m := ix.stripes[stripeOf(user)]
	if m == nil {
		return 0, false
	}
	p, ok := m[user]
	return int(p), ok
}

// composed returns segment s's full-depth arenas, materializing them on
// first use. The double-checked atomic keeps the hot path allocation- and
// lock-free once a segment is built.
func (ix *Index) composed(s int32) *composedSeg {
	c := &ix.comp[s]
	if c.done.Load() {
		return c
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done.Load() {
		return c
	}
	m := ix.segs[s]
	t := ix.tails[s]
	base := int(ix.offs[m.lo])
	size := int(ix.offs[m.hi]) - base
	vec := make([]float64, size)
	pu := make([]float64, size)
	hv, hu := ix.headVec[s], ix.headUsage[s]
	ti := 0
	for i := int(m.lo); i < int(m.hi); i++ {
		off := int(ix.offs[i]) - base
		d := int(ix.offs[i+1] - ix.offs[i])
		vec[off], pu[off] = hv, hu
		copy(vec[off+1:off+d], t.vec[ti:ti+d-1])
		copy(pu[off+1:off+d], t.usage[ti:ti+d-1])
		ti += d - 1
	}
	c.vec, c.usage = vec, pu
	c.done.Store(true)
	return c
}

// tailSpan returns entry i's offset and length within its segment's tail
// arenas: full-depth coordinates rebased to the segment, minus the one
// interned level-0 slot per preceding leaf.
func (ix *Index) tailSpan(i int, m segMeta) (off, length int) {
	off = int(ix.offs[i]) - int(ix.offs[m.lo]) - (i - int(m.lo))
	length = int(ix.offs[i+1]-ix.offs[i]) - 1
	return off, length
}

// At returns the entry at position i, composed from the index's arenas.
// The entry's slices alias immutable per-snapshot storage (the segment's
// lazily built composed arenas); callers must not mutate them.
func (ix *Index) At(i int) IndexEntry {
	s := ix.segOf[i]
	c := ix.composed(s)
	base := ix.offs[ix.segs[s].lo]
	off, end := ix.offs[i]-base, ix.offs[i+1]-base
	goff, gend := ix.offs[i], ix.offs[i+1]
	return IndexEntry{
		Entry: vector.Entry{
			User:       ix.users[i],
			Vec:        vector.Vector(c.vec[off:end:end]),
			PathShares: ix.shares[goff:gend:gend],
			PathUsage:  c.usage[off:end:end],
		},
		LeafPriority: ix.tails[s].leafPrio[int(i)-int(ix.segs[s].lo)],
	}
}

// View returns the entry at position i factored along the segment seam,
// without touching (or building) the composed arenas. Refresh-path
// consumers that fold over per-level values should prefer this to At: it
// costs a few slice headers regardless of how many segments the snapshot
// has materialized.
func (ix *Index) View(i int) EntryView {
	s := ix.segOf[i]
	m := ix.segs[s]
	t := ix.tails[s]
	goff, gend := ix.offs[i], ix.offs[i+1]
	to, tl := ix.tailSpan(i, m)
	return EntryView{
		User:         ix.users[i],
		HeadVec:      ix.headVec[s],
		HeadUsage:    ix.headUsage[s],
		PathShares:   ix.shares[goff:gend:gend],
		TailVec:      t.vec[to : to+tl : to+tl],
		TailUsage:    t.usage[to : to+tl : to+tl],
		LeafPriority: t.leafPrio[i-int(m.lo)],
	}
}

// Segments returns the number of top-level-subtree segments the value half
// is partitioned into.
func (ix *Index) Segments() int { return len(ix.segs) }

// Lookup returns the serving record for a user. The returned entry shares
// the index's immutable arenas; callers must not mutate its slices.
func (ix *Index) Lookup(user string) (IndexEntry, bool) {
	i, ok := ix.Pos(user)
	if !ok {
		return IndexEntry{}, false
	}
	return ix.At(i), true
}

// positions returns every leaf position carrying the user's name (ascending
// DFS order), appending into buf to avoid allocation in the unique case.
func (ix *Index) positions(user string, buf []int32) []int32 {
	if ps, ok := ix.dups[user]; ok {
		return ps
	}
	if p, ok := ix.Pos(user); ok {
		return append(buf[:0], int32(p))
	}
	return nil
}

// Entries returns the projection view of every leaf in DFS order (including
// any duplicate-named leaves, matching Tree.Entries). The slice and its
// entries are shared and immutable; callers must not mutate them. The view
// is materialized lazily on first use — pointwise projections never need it.
func (ix *Index) Entries() []vector.Entry {
	ix.projOnce.Do(func() {
		pe := make([]vector.Entry, len(ix.users))
		for i := range pe {
			pe[i] = ix.At(i).Entry
		}
		ix.projEntries = pe
	})
	return ix.projEntries
}

// Len returns the number of indexed leaves.
func (ix *Index) Len() int { return len(ix.users) }
