package fairshare

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/vector"
)

// IndexEntry is one user's fully resolved serving record: the projection
// entry (vector, per-level target and usage shares) plus the raw leaf
// priority. Entries are composed on the fly from the index's flat arenas;
// the embedded slices alias those immutable arenas, so they can be handed
// out without copying but must not be mutated.
type IndexEntry struct {
	vector.Entry
	// LeafPriority is the raw (unprojected) priority of the user's leaf.
	LeafPriority float64
}

// indexStripes is the number of hash stripes the user→position map is split
// into. Striping lets full index rebuilds populate the map from several
// goroutines without a global lock, and keeps per-map sizes (and therefore
// rehash pauses) bounded at the 1M-user scale.
const indexStripes = 16

// Index is an immutable O(1) lookup table over a fairshare tree's leaves.
// It is what lets the FCS serve `Priority()` without walking the tree: "no
// real-time calculations need to take place when new jobs arrive". An Index
// is safe for concurrent use by any number of readers because nothing
// mutates it after construction (the lazy projection view is built under a
// sync.Once).
//
// Storage is split in two along the incremental-recalc seam:
//
//   - The identity half — user names, per-entry arena offsets, target
//     shares, the sharded user→position maps and the duplicate table —
//     depends only on the policy topology, so incremental rebuilds (see
//     Recalc) share it wholesale with the previous index.
//   - The value half — the flattened vector, usage-share and leaf-priority
//     arenas — is what a usage delta changes. It lives in plain []float64
//     arenas with no interior pointers, so replacing it per refresh costs
//     three allocations that the garbage collector never has to scan.
//
// The user→position map is sharded into indexStripes stripes by name hash
// so full rebuilds parallelize across cores.
type Index struct {
	// users[i] is the leaf name at entry position i (DFS order).
	users []string
	// offs[i] is the start of entry i's per-level values in the flat
	// arenas; entry i spans [offs[i], offs[i+1]) and its depth is the
	// difference. len(offs) == len(users)+1.
	offs []int32
	// shares holds every entry's normalized target shares, flattened per
	// offs. Target shares change only with the policy, never with usage.
	shares []float64

	// vec, pathUsage and leafPrio are the per-snapshot value arenas: the
	// fairshare vector and usage share at each level (flattened per offs)
	// and the raw leaf priority per position.
	vec       []float64
	pathUsage []float64
	leafPrio  []float64

	// stripes[hash(user)%indexStripes] maps a user name to its first entry
	// position in DFS order (matching Tree.Vector / Tree.LeafPriority, which
	// return the first leaf with that name when a degenerate policy repeats
	// names across groups).
	stripes [indexStripes]map[string]int32
	// dups holds, for names appearing on more than one leaf, every position
	// (including the first) in ascending DFS order. Nil when all names are
	// unique — the common case.
	dups map[string][]int32
	// projEntries is a lazily built []vector.Entry view over the arenas,
	// sharing their storage, so projections run without re-walking or
	// re-copying. Lazy because pointwise projections never need it.
	projOnce    sync.Once
	projEntries []vector.Entry
}

// stripeOf hashes a user name (FNV-1a) onto a stripe without allocating.
func stripeOf(name string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return uint32(h % indexStripes)
}

// NewIndex builds the index for a computed tree. Small trees use a single
// depth-first walk; large trees split the root's subtrees into contiguous
// leaf ranges (the per-node leaf counts cached at build time give exact
// offsets) and build entries plus per-range stripe maps in parallel, merging
// the stripe maps deterministically afterwards.
func NewIndex(t *Tree) *Index {
	ix := &Index{}
	n := leafCount(t.Root)
	if n >= parallelComputeThreshold && len(t.Root.Children) > 1 {
		ix.buildParallel(t.Root, n)
		return ix
	}
	ix.users = make([]string, 0, n)
	ix.offs = append(make([]int32, 0, n+1), 0)
	ix.leafPrio = make([]float64, 0, n)
	for s := range ix.stripes {
		ix.stripes[s] = make(map[string]int32)
	}
	walkLeaves(t.Root, func(nd *Node, vec vector.Vector, shares, usages []float64) {
		pos := int32(len(ix.users))
		ix.users = append(ix.users, nd.Name)
		ix.vec = append(ix.vec, vec...)
		ix.shares = append(ix.shares, shares...)
		ix.pathUsage = append(ix.pathUsage, usages...)
		ix.leafPrio = append(ix.leafPrio, nd.Priority)
		ix.offs = append(ix.offs, int32(len(ix.vec)))
		ix.addPos(nd.Name, pos)
	})
	return ix
}

// addPos records a leaf position for a name: first occurrence wins the
// stripe map, later ones go to the duplicate table.
func (ix *Index) addPos(name string, pos int32) {
	m := ix.stripes[stripeOf(name)]
	if first, dup := m[name]; dup {
		if ix.dups == nil {
			ix.dups = make(map[string][]int32)
		}
		if len(ix.dups[name]) == 0 {
			ix.dups[name] = append(ix.dups[name], first)
		}
		ix.dups[name] = append(ix.dups[name], pos)
		return
	}
	m[name] = pos
}

// subtreeDepthSum returns the summed root-to-leaf path length over every
// leaf of the subtree, with the subtree's own node at the given level — the
// arena space the subtree's entries occupy.
func subtreeDepthSum(n *Node, level int) int {
	if len(n.Children) == 0 {
		return level
	}
	s := 0
	for _, c := range n.Children {
		s += subtreeDepthSum(c, level+1)
	}
	return s
}

// buildParallel partitions the root's children into contiguous chunks of
// roughly equal leaf count, builds each chunk's arena section and local
// stripe maps concurrently, then merges the stripe maps. Entry order,
// first-wins positions and duplicate tables are bitwise identical to the
// serial walk.
func (ix *Index) buildParallel(root *Node, n int) {
	// Arena extents per top-level child (integer-only pre-pass) give each
	// chunk its exact leaf position and arena offset.
	depthSums := make([]int, len(root.Children))
	total := 0
	for i, c := range root.Children {
		depthSums[i] = subtreeDepthSum(c, 1)
		total += depthSums[i]
	}
	ix.users = make([]string, n)
	ix.offs = make([]int32, n+1)
	ix.shares = make([]float64, total)
	ix.vec = make([]float64, total)
	ix.pathUsage = make([]float64, total)
	ix.leafPrio = make([]float64, n)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(root.Children) {
		workers = len(root.Children)
	}
	// Chunk boundaries: greedy fill to ~n/workers leaves per chunk.
	type chunk struct {
		firstChild, lastChild int // child index range [first, last)
		offset                int // global position of the chunk's first leaf
		arenaOff              int // global arena offset of the chunk's first value
	}
	var chunks []chunk
	target := (n + workers - 1) / workers
	off, aoff, acc, aacc, first := 0, 0, 0, 0, 0
	for i, c := range root.Children {
		acc += int(c.leaves)
		aacc += depthSums[i]
		if acc >= target || i == len(root.Children)-1 {
			chunks = append(chunks, chunk{firstChild: first, lastChild: i + 1, offset: off, arenaOff: aoff})
			off += acc
			aoff += aacc
			acc, aacc = 0, 0
			first = i + 1
		}
	}
	type local struct {
		stripes [indexStripes]map[string]int32
		// extra holds positions whose name already had a smaller position
		// within this chunk (in-chunk duplicates).
		extra []int32
	}
	locals := make([]local, len(chunks))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for i := range chunks {
		go func(i int) {
			defer wg.Done()
			ck := chunks[i]
			lc := &locals[i]
			for s := range lc.stripes {
				lc.stripes[s] = make(map[string]int32)
			}
			pos := int32(ck.offset)
			ai := ck.arenaOff
			for child := ck.firstChild; child < ck.lastChild; child++ {
				walkSubtree(root.Children[child], func(nd *Node, vec vector.Vector, shares, usages []float64) {
					d := len(vec)
					copy(ix.vec[ai:ai+d], vec)
					copy(ix.shares[ai:ai+d], shares)
					copy(ix.pathUsage[ai:ai+d], usages)
					ai += d
					ix.users[pos] = nd.Name
					ix.leafPrio[pos] = nd.Priority
					ix.offs[pos+1] = int32(ai)
					m := lc.stripes[stripeOf(nd.Name)]
					if _, dup := m[nd.Name]; dup {
						lc.extra = append(lc.extra, pos)
					} else {
						m[nd.Name] = pos
					}
					pos++
				})
			}
		}(i)
	}
	wg.Wait()

	// Merge: chunks in ascending order so the smallest position wins each
	// name; collisions (cross-chunk repeats) and in-chunk extras become
	// duplicate-table entries.
	var conflicts []int32
	for s := 0; s < indexStripes; s++ {
		merged := make(map[string]int32)
		for ci := range locals {
			for name, pos := range locals[ci].stripes[s] {
				if _, ok := merged[name]; ok {
					conflicts = append(conflicts, pos)
				} else {
					merged[name] = pos
				}
			}
		}
		ix.stripes[s] = merged
	}
	for ci := range locals {
		conflicts = append(conflicts, locals[ci].extra...)
	}
	if len(conflicts) > 0 {
		ix.dups = make(map[string][]int32)
		for _, pos := range conflicts {
			name := ix.users[pos]
			if len(ix.dups[name]) == 0 {
				// Seed with the winning first position.
				ix.dups[name] = append(ix.dups[name], ix.stripes[stripeOf(name)][name])
			}
			ix.dups[name] = append(ix.dups[name], pos)
		}
		for name := range ix.dups {
			ps := ix.dups[name]
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		}
	}
}

// leafCount returns the number of index entries a tree yields: the cached
// per-subtree leaf counts summed over the root's children (a childless root
// produces no entries, matching walkLeaves).
func leafCount(root *Node) int {
	n := 0
	for _, c := range root.Children {
		n += int(c.leaves)
	}
	return n
}

// walkSubtree visits every leaf of a top-level subtree in DFS order with the
// same path-state semantics as walkLeaves (the stacks start at c's level).
// Used to walk contiguous leaf ranges in parallel.
func walkSubtree(c *Node, fn func(leaf *Node, vec vector.Vector, shares, usages []float64)) {
	vec := vector.Vector{c.Value}
	shares := []float64{c.Share}
	usages := []float64{c.UsageShare}
	if len(c.Children) == 0 {
		fn(c, vec, shares, usages)
		return
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			fn(n, vec, shares, usages)
			return
		}
		for _, ch := range n.Children {
			vec = append(vec, ch.Value)
			shares = append(shares, ch.Share)
			usages = append(usages, ch.UsageShare)
			walk(ch)
			vec = vec[:len(vec)-1]
			shares = shares[:len(shares)-1]
			usages = usages[:len(usages)-1]
		}
	}
	walk(c)
}

// Index builds the serving index for the tree. Equivalent to NewIndex(t).
func (t *Tree) Index() *Index { return NewIndex(t) }

// Pos returns the entry position for a user (the first leaf in DFS order
// when the name is duplicated) without allocating.
func (ix *Index) Pos(user string) (int, bool) {
	m := ix.stripes[stripeOf(user)]
	if m == nil {
		return 0, false
	}
	p, ok := m[user]
	return int(p), ok
}

// At returns the entry at position i, composed from the index's flat
// arenas. The entry's slices alias immutable arena storage; callers must
// not mutate them.
func (ix *Index) At(i int) IndexEntry {
	off, end := ix.offs[i], ix.offs[i+1]
	return IndexEntry{
		Entry: vector.Entry{
			User:       ix.users[i],
			Vec:        vector.Vector(ix.vec[off:end:end]),
			PathShares: ix.shares[off:end:end],
			PathUsage:  ix.pathUsage[off:end:end],
		},
		LeafPriority: ix.leafPrio[i],
	}
}

// Lookup returns the serving record for a user. The returned entry shares
// the index's immutable arenas; callers must not mutate its slices.
func (ix *Index) Lookup(user string) (IndexEntry, bool) {
	i, ok := ix.Pos(user)
	if !ok {
		return IndexEntry{}, false
	}
	return ix.At(i), true
}

// positions returns every leaf position carrying the user's name (ascending
// DFS order), appending into buf to avoid allocation in the unique case.
func (ix *Index) positions(user string, buf []int32) []int32 {
	if ps, ok := ix.dups[user]; ok {
		return ps
	}
	if p, ok := ix.Pos(user); ok {
		return append(buf[:0], int32(p))
	}
	return nil
}

// Entries returns the projection view of every leaf in DFS order (including
// any duplicate-named leaves, matching Tree.Entries). The slice and its
// entries are shared and immutable; callers must not mutate them. The view
// is materialized lazily on first use — pointwise projections never need it.
func (ix *Index) Entries() []vector.Entry {
	ix.projOnce.Do(func() {
		pe := make([]vector.Entry, len(ix.users))
		for i := range pe {
			pe[i] = ix.At(i).Entry
		}
		ix.projEntries = pe
	})
	return ix.projEntries
}

// Len returns the number of indexed leaves.
func (ix *Index) Len() int { return len(ix.users) }
