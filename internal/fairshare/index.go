package fairshare

import (
	"repro/internal/vector"
)

// IndexEntry is one user's fully resolved serving record: the projection
// entry (vector, per-level target and usage shares) plus the raw leaf
// priority. The embedded slices are owned by the entry and immutable once
// the index is built, so they can be handed out without copying.
type IndexEntry struct {
	vector.Entry
	// LeafPriority is the raw (unprojected) priority of the user's leaf.
	LeafPriority float64
}

// Index is an immutable O(1) lookup table over a fairshare tree's leaves,
// built from a single depth-first walk at pre-calculation time. It is what
// lets the FCS serve `Priority()` without walking the tree: "no real-time
// calculations need to take place when new jobs arrive". An Index is safe
// for concurrent use by any number of readers because nothing mutates it
// after construction.
type Index struct {
	entries []IndexEntry
	// pos maps a user name to its first entry (matching Tree.Vector /
	// Tree.LeafPriority, which return the first leaf with that name when a
	// degenerate policy repeats names across groups).
	pos map[string]int
	// projEntries is a prebuilt []vector.Entry view over entries, sharing
	// their slices, so projections run without re-walking or re-copying.
	projEntries []vector.Entry
}

// NewIndex builds the index for a computed tree in one walk.
func NewIndex(t *Tree) *Index {
	ix := &Index{pos: make(map[string]int)}
	walkLeaves(t.Root, func(n *Node, vec vector.Vector, shares, usages []float64) {
		e := IndexEntry{
			Entry: vector.Entry{
				User:       n.Name,
				Vec:        vec.Clone(),
				PathShares: append([]float64(nil), shares...),
				PathUsage:  append([]float64(nil), usages...),
			},
			LeafPriority: n.Priority,
		}
		if _, dup := ix.pos[n.Name]; !dup {
			ix.pos[n.Name] = len(ix.entries)
		}
		ix.entries = append(ix.entries, e)
	})
	ix.projEntries = make([]vector.Entry, len(ix.entries))
	for i := range ix.entries {
		ix.projEntries[i] = ix.entries[i].Entry
	}
	return ix
}

// Index builds the serving index for the tree. Equivalent to NewIndex(t).
func (t *Tree) Index() *Index { return NewIndex(t) }

// Lookup returns the serving record for a user. The returned entry shares
// the index's immutable slices; callers must not mutate them.
func (ix *Index) Lookup(user string) (IndexEntry, bool) {
	i, ok := ix.pos[user]
	if !ok {
		return IndexEntry{}, false
	}
	return ix.entries[i], true
}

// Entries returns the projection view of every leaf in DFS order (including
// any duplicate-named leaves, matching Tree.Entries). The slice and its
// entries are shared and immutable; callers must not mutate them.
func (ix *Index) Entries() []vector.Entry { return ix.projEntries }

// Len returns the number of indexed leaves.
func (ix *Index) Len() int { return len(ix.entries) }
