package fairshare

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/policy"
	"repro/internal/vector"
)

// buildWide builds a policy with users spread over groups and matching
// usage, for compute benchmarks.
func buildWide(groups, usersPerGroup int) (*policy.Tree, map[string]float64) {
	p := policy.NewTree()
	usage := map[string]float64{}
	rng := rand.New(rand.NewSource(1))
	for g := 0; g < groups; g++ {
		gname := fmt.Sprintf("g%03d", g)
		p.Add("", gname, rng.Float64()+0.1)
		for u := 0; u < usersPerGroup; u++ {
			uname := fmt.Sprintf("u%03d_%03d", g, u)
			p.Add("/"+gname, uname, rng.Float64()+0.1)
			usage[uname] = rng.Float64() * 1e6
		}
	}
	return p, usage
}

func BenchmarkCompute100Users(b *testing.B) {
	p, usage := buildWide(10, 10)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(p, usage, cfg)
	}
}

func BenchmarkCompute1000Users(b *testing.B) {
	p, usage := buildWide(25, 40)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(p, usage, cfg)
	}
}

func BenchmarkEntries1000Users(b *testing.B) {
	p, usage := buildWide(25, 40)
	t := Compute(p, usage, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(t.Entries()) == 0 {
			b.Fatal("no entries")
		}
	}
}

func BenchmarkProjections1000Users(b *testing.B) {
	p, usage := buildWide(25, 40)
	t := Compute(p, usage, DefaultConfig())
	entries := t.Entries()
	for _, proj := range vector.Projections() {
		proj := proj
		b.Run(proj.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				proj.Project(entries, 10000)
			}
		})
	}
}

// benchScales are the population sizes the incremental-recalc benchmarks
// sweep (groups × usersPerGroup).
var benchScales = []struct {
	name             string
	groups, perGroup int
}{
	{"10k", 100, 100},
	{"100k", 320, 320},
	{"1M", 1000, 1000},
}

// benchDirtyFracs are the dirty-user ratios per Apply.
var benchDirtyFracs = []struct {
	name string
	frac float64
}{
	{"dirty0.01pct", 0.0001},
	{"dirty1pct", 0.01},
	{"dirty100pct", 1},
}

// buildWideDirect is buildWide by direct node construction — policy.Add's
// duplicate-sibling scan is quadratic and would dominate setup at the
// 1M-user scale.
func buildWideDirect(groups, perGroup int) (*policy.Tree, map[string]float64, []string) {
	rng := rand.New(rand.NewSource(1))
	root := &policy.Node{Name: "", Share: 1}
	root.Children = make([]*policy.Node, 0, groups)
	usage := make(map[string]float64, groups*perGroup)
	users := make([]string, 0, groups*perGroup)
	for g := 0; g < groups; g++ {
		gn := &policy.Node{Name: fmt.Sprintf("g%04d", g), Share: rng.Float64() + 0.1}
		gn.Children = make([]*policy.Node, 0, perGroup)
		for u := 0; u < perGroup; u++ {
			name := fmt.Sprintf("u%04d_%04d", g, u)
			gn.Children = append(gn.Children, &policy.Node{Name: name, Share: rng.Float64() + 0.1})
			usage[name] = rng.Float64() * 1e6
			users = append(users, name)
		}
		root.Children = append(root.Children, gn)
	}
	return &policy.Tree{Root: root}, usage, users
}

// benchDeltaSeq issues process-unique delta values so the benchmark's
// warm-up probe run can never leave the engine in a state where the
// measured run's first delta is a bitwise no-op (which would make that
// Apply nearly free and halve the reported cost).
var benchDeltaSeq int64

// BenchmarkRecalcApply measures one incremental snapshot derivation at
// varying scale and dirty ratio — the steady-state cost the FCS pays per
// refresh when delta sources are wired up.
func BenchmarkRecalcApply(b *testing.B) {
	for _, sz := range benchScales {
		b.Run(sz.name, func(b *testing.B) {
			p, usage, users := buildWideDirect(sz.groups, sz.perGroup)
			cfg := DefaultConfig()
			tree := Compute(p, usage, cfg)
			ix := NewIndex(tree)
			n := len(users)
			for _, fr := range benchDirtyFracs {
				b.Run(fr.name, func(b *testing.B) {
					r := NewRecalc(tree, ix)
					k := int(float64(n) * fr.frac)
					if k < 1 {
						k = 1
					}
					delta := make(map[string]float64, k)
					var matSegs, sharedSegs int
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for j := 0; j < k; j++ {
							benchDeltaSeq++
							delta[users[int(benchDeltaSeq)*7919%n]] = float64(benchDeltaSeq) + 0.5
						}
						_, _, st, err := r.Apply(delta)
						if err != nil {
							b.Fatal(err)
						}
						if st.DirtyLeaves != len(delta) {
							b.Fatalf("dirty leaves = %d, want %d", st.DirtyLeaves, len(delta))
						}
						matSegs += st.MaterializedSegments
						sharedSegs += st.SharedSegments
						for u := range delta {
							delete(delta, u)
						}
					}
					b.ReportMetric(float64(matSegs)/float64(b.N), "dirtysegs/op")
					b.ReportMetric(float64(sharedSegs)/float64(b.N), "sharedsegs/op")
				})
			}
		})
	}
}

// BenchmarkRecalcFullBaseline is the from-scratch Compute+NewIndex cost the
// incremental path is measured against (same trees as BenchmarkRecalcApply).
func BenchmarkRecalcFullBaseline(b *testing.B) {
	for _, sz := range benchScales {
		b.Run(sz.name, func(b *testing.B) {
			p, usage, _ := buildWideDirect(sz.groups, sz.perGroup)
			cfg := DefaultConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := Compute(p, usage, cfg)
				if NewIndex(t).Len() == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

func BenchmarkVectorLookup(b *testing.B) {
	p, usage := buildWide(25, 40)
	t := Compute(p, usage, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Vector("u012_020"); !ok {
			b.Fatal("missing user")
		}
	}
}
