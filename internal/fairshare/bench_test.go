package fairshare

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/policy"
	"repro/internal/vector"
)

// buildWide builds a policy with users spread over groups and matching
// usage, for compute benchmarks.
func buildWide(groups, usersPerGroup int) (*policy.Tree, map[string]float64) {
	p := policy.NewTree()
	usage := map[string]float64{}
	rng := rand.New(rand.NewSource(1))
	for g := 0; g < groups; g++ {
		gname := fmt.Sprintf("g%03d", g)
		p.Add("", gname, rng.Float64()+0.1)
		for u := 0; u < usersPerGroup; u++ {
			uname := fmt.Sprintf("u%03d_%03d", g, u)
			p.Add("/"+gname, uname, rng.Float64()+0.1)
			usage[uname] = rng.Float64() * 1e6
		}
	}
	return p, usage
}

func BenchmarkCompute100Users(b *testing.B) {
	p, usage := buildWide(10, 10)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(p, usage, cfg)
	}
}

func BenchmarkCompute1000Users(b *testing.B) {
	p, usage := buildWide(25, 40)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(p, usage, cfg)
	}
}

func BenchmarkEntries1000Users(b *testing.B) {
	p, usage := buildWide(25, 40)
	t := Compute(p, usage, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(t.Entries()) == 0 {
			b.Fatal("no entries")
		}
	}
}

func BenchmarkProjections1000Users(b *testing.B) {
	p, usage := buildWide(25, 40)
	t := Compute(p, usage, DefaultConfig())
	entries := t.Entries()
	for _, proj := range vector.Projections() {
		proj := proj
		b.Run(proj.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				proj.Project(entries, 10000)
			}
		})
	}
}

func BenchmarkVectorLookup(b *testing.B) {
	p, usage := buildWide(25, 40)
	t := Compute(p, usage, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Vector("u012_020"); !ok {
			b.Fatal("missing user")
		}
	}
}
