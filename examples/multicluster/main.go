// Multicluster: two Aequus sites exchanging usage over HTTP.
//
// Each site runs the full five-service stack behind a real HTTP listener,
// exactly like two aequusd instances. A user burns compute on site B; after
// a usage exchange, site A's fairshare values reflect the *global* history,
// which is the whole point of decentralized grid-wide fairshare.
//
// Run with: go run ./examples/multicluster
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/libaequus"
	"repro/internal/policy"
	"repro/internal/services/httpapi"
	"repro/internal/services/irs"
	"repro/internal/usage"
)

func main() {
	pol, err := policy.FromShares(map[string]float64{"alice": 0.5, "bob": 0.5})
	if err != nil {
		log.Fatal(err)
	}

	siteA := mustSite("site-a", pol)
	siteB := mustSite("site-b", pol)

	urlA := serve(siteA)
	urlB := serve(siteB)
	fmt.Printf("site-a serving on %s\nsite-b serving on %s\n\n", urlA, urlB)

	// Peer the sites over HTTP: each pulls the other's compact usage
	// records.
	siteA.ConnectPeer(httpapi.NewClient(urlB, "site-b"))
	siteB.ConnectPeer(httpapi.NewClient(urlA, "site-a"))

	// A libaequus client for a scheduler co-located with site A, talking
	// HTTP like the real C library's web-service clients.
	clientA := httpapi.NewClient(urlA, "site-a")
	lib := libaequus.New(libaequus.Config{Site: "site-a", CacheTTL: 0},
		clientA, clientA, clientA)

	show := func(label string) {
		pa, err := lib.PriorityForLocalUser("alice")
		if err != nil {
			log.Fatal(err)
		}
		pb, err := lib.PriorityForLocalUser("bob")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s alice=%.4f bob=%.4f\n", label, pa, pb)
	}

	show("initial (no usage anywhere):")

	// bob consumes an hour of compute on site B — reported to site B's USS
	// through its HTTP API, as a job-completion plug-in would.
	clientB := httpapi.NewClient(urlB, "site-b")
	if err := clientB.ReportJobErr("bob", time.Now().Add(-time.Hour), time.Hour, 4); err != nil {
		log.Fatal(err)
	}
	if err := siteA.Refresh(); err != nil {
		log.Fatal(err)
	}
	show("after bob ran on site B (no exchange):")

	// Exchange usage, refresh the pre-calculated fairshare tree.
	if err := siteA.Exchange(); err != nil {
		log.Fatal(err)
	}
	if err := siteA.Refresh(); err != nil {
		log.Fatal(err)
	}
	show("after usage exchange B -> A:")

	fmt.Println("\nsite A now discounts bob for compute he consumed on site B —")
	fmt.Println("the same job is prioritized comparably wherever it is submitted.")
}

func mustSite(name string, pol *policy.Tree) *core.Site {
	s, err := core.NewSite(core.SiteConfig{
		Name:       name,
		Policy:     pol,
		BinWidth:   time.Minute,
		Decay:      usage.ExponentialHalfLife{HalfLife: 24 * time.Hour},
		Contribute: true,
		UseGlobal:  true,
		ResolveEndpoint: irs.EndpointFunc(func(_, local string) (string, error) {
			return local, nil // identity mapping: local accounts == grid ids
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// serve starts an HTTP listener for the site and returns its base URL.
func serve(s *core.Site) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := httpapi.NewServer(s.PDS, s.USS, s.UMS, s.FCS, s.IRS)
	go func() {
		if err := http.Serve(ln, srv); err != nil {
			log.Print(err)
		}
	}()
	return "http://" + ln.Addr().String()
}
