// Quickstart: the Aequus fairshare calculation as a library, no services.
//
// It builds the hierarchical policy of the paper's Figure 3, feeds in
// historical usage, computes the fairshare tree, extracts per-user fairshare
// vectors and projects them to scheduler-combinable priorities with all
// three projection algorithms.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/vector"
)

func main() {
	// A site policy: 30% to HQ, 10% to LQ, 60% mounted to the grid, which
	// subdivides into two projects with their own users.
	pol := policy.NewTree()
	must(pol.Add("", "hq", 30))
	must(pol.Add("", "lq", 10))
	must(pol.Add("", "grid", 60))
	must(pol.Add("/grid", "projA", 75))
	must(pol.Add("/grid", "projB", 25))
	must(pol.Add("/grid/projA", "u1", 25))
	must(pol.Add("/grid/projA", "u2", 75))
	must(pol.Add("/grid/projB", "u3", 100))

	// Decayed historical usage in core-seconds per user (normally produced
	// by the USS/UMS pipeline from job completions).
	usage := map[string]float64{
		"hq": 40_000, "lq": 2_000,
		"u1": 30_000, "u2": 20_000, "u3": 11_000,
	}

	// Compute the fairshare tree: k = 0.5 blends the absolute and relative
	// distance metrics equally; values live in 0..9999 with balance 5000.
	tree := fairshare.Compute(pol, usage, fairshare.DefaultConfig())

	fmt.Println("fairshare vectors (resolution 0-9999, balance point 5000):")
	for _, user := range []string{"hq", "lq", "u1", "u2", "u3"} {
		vec, ok := tree.Vector(user)
		if !ok {
			log.Fatalf("no vector for %s", user)
		}
		padded := vec.PadTo(tree.Depth(), tree.Config.Balance())
		prio, _ := tree.LeafPriority(user)
		fmt.Printf("  %-3s  %-18v  (padded %v, leaf priority %+.3f)\n", user, vec, padded, prio)
	}

	fmt.Println("\nprojected priorities in [0,1], combinable with age/QoS factors:")
	fmt.Printf("  %-4s %12s %12s %12s\n", "user", "dictionary", "bitwise", "percental")
	projections := vector.Projections()
	results := make([]map[string]float64, len(projections))
	for i, p := range projections {
		results[i] = tree.Priorities(p)
	}
	for _, user := range []string{"hq", "lq", "u1", "u2", "u3"} {
		fmt.Printf("  %-4s", user)
		for i := range projections {
			fmt.Printf(" %12.4f", results[i][user])
		}
		fmt.Println()
	}

	fmt.Println("\nlq has consumed almost nothing against its 10% share, so the")
	fmt.Println("order-preserving projections (dictionary, bitwise) rank it first.")
	fmt.Println("percental may rank a deep under-consuming user like u2 above lq —")
	fmt.Println("the subgroup-isolation trade-off of Table I.")
}

func must(_ string, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
