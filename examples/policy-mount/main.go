// Policy mounting: the PDS feature that lets "local administrators assign
// parts of the resources to one or more grids while retaining full control
// over the infrastructure" (Section II-A).
//
// A national PDS serves the grid-wide policy (how the grid's share divides
// among virtual organizations). Two sites mount that policy under their own
// roots with different local shares, over HTTP. When the national policy
// changes, a refresh propagates it — without the sites ever editing their
// local trees.
//
// Run with: go run ./examples/policy-mount
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/policy"
	"repro/internal/services/httpapi"
	"repro/internal/services/pds"
)

func main() {
	// The nationally managed grid policy: two VOs with their users.
	national := policy.NewTree()
	must(national.Add("", "vo-atlas", 3))
	must(national.Add("", "vo-alice", 1))
	must(national.Add("/vo-atlas", "u-atlas-1", 1))
	must(national.Add("/vo-atlas", "u-atlas-2", 1))
	must(national.Add("/vo-alice", "u-alice-1", 1))
	nationalPDS := pds.New(national, nil)
	nationalURL := serve(nationalPDS)
	fmt.Printf("national PDS serving on %s\n\n", nationalURL)

	// Two sites with their own local users; each grants the grid a
	// different slice of its resources.
	siteA := newSitePDS("site-a", 40)
	siteB := newSitePDS("site-b", 80)
	if err := siteA.Mount("", "grid", 60, nationalURL+"|/"); err != nil {
		log.Fatal(err)
	}
	if err := siteB.Mount("", "grid", 20, nationalURL+"|/"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("site-a policy (grid granted 60%):")
	print(siteA)
	fmt.Println("site-b policy (grid granted 20%):")
	print(siteB)

	// The national administration rebalances the VOs; the sites refresh.
	fmt.Println("national policy change: vo-alice share raised to equal vo-atlas")
	updated := policy.NewTree()
	must(updated.Add("", "vo-atlas", 1))
	must(updated.Add("", "vo-alice", 1))
	must(updated.Add("/vo-atlas", "u-atlas-1", 1))
	must(updated.Add("/vo-atlas", "u-atlas-2", 1))
	must(updated.Add("/vo-alice", "u-alice-1", 1))
	if err := nationalPDS.SetPolicy(updated); err != nil {
		log.Fatal(err)
	}
	if err := siteA.RefreshMounts(); err != nil {
		log.Fatal(err)
	}
	if err := siteB.RefreshMounts(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter refresh, site-a:")
	print(siteA)

	fmt.Println("each site kept its own local/grid split; only the grid-internal")
	fmt.Println("subdivision — managed nationally — changed under the mount point.")
}

func newSitePDS(name string, localShare float64) *pds.Service {
	local := policy.NewTree()
	if _, err := local.Add("", "local-"+name, localShare); err != nil {
		log.Fatal(err)
	}
	return pds.New(local, httpapi.PolicyFetcher(nil))
}

// serve exposes a PDS over HTTP (only the policy endpoints are registered).
func serve(p *pds.Service) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := httpapi.NewServer(p, nil, nil, nil, nil)
	go func() { _ = http.Serve(ln, srv) }()
	return "http://" + ln.Addr().String()
}

func print(p *pds.Service) {
	if err := policy.WriteText(os.Stdout, p.Policy().Normalize()); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func must(_ string, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
