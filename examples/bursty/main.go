// Bursty workload: the paper's Section IV-A.5 scenario as a library user
// would run it — generate the bursty synthetic workload (U3's job share
// raised to 45.5%, burst starting after one third of the run), drive the
// emulated multi-cluster testbed, and watch the system re-balance when the
// burst hits.
//
// Run with: go run ./examples/bursty
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const (
		sites = 4
		cores = 24
		jobs  = 6000
	)
	duration := 6 * time.Hour
	start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

	model := workload.Bursty2012(duration)
	tr, err := model.Generate(workload.GenerateOptions{
		TotalJobs: jobs, Start: start, Span: duration, Seed: 7,
		CalibrateUsage: true, MaxDuration: duration / 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr = workload.ScaleToLoad(tr, sites*cores, 0.95, duration)

	fmt.Println("bursty trace characteristics (paper: jobs 45.5/6.5/45.5/3%, usage 47/38.5/12/2.5%):")
	for _, s := range trace.UserStats(tr) {
		fmt.Printf("  %-5s jobs %5.1f%%  usage %5.1f%%\n", s.User, 100*s.JobShare, 100*s.UsageShare)
	}

	targets := map[string]float64{}
	for _, u := range model.Users {
		targets[u.Name] = u.UsageFraction
	}
	res, err := testbed.Run(testbed.Config{
		Sites: sites, CoresPerSite: cores, Start: start, Duration: duration,
		PolicyShares: targets, Trace: tr, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nU3 priority over the run (burst arrives after ~1/3 of the test):")
	u3 := res.Priorities[workload.U3]
	maxSeen := 0.0
	for i := 0; i < u3.Len(); i += u3.Len() / 24 {
		v := u3.Values[i]
		if v > maxSeen {
			maxSeen = v
		}
		bar := ""
		for b := 0.0; b < v; b += 0.02 {
			bar += "#"
		}
		fmt.Printf("  %4.0f min  %+.3f  %s\n", u3.Times[i].Sub(start).Minutes(), v, bar)
	}
	fmt.Printf("\nmax U3 priority %.3f — bounded by k·(1+share) = 0.5·(1+0.12) = 0.56\n", maxSeen)
	fmt.Printf("utilization %.1f%%, %d of %d jobs completed\n",
		100*res.Utilization, res.Completed, res.Submitted)
}
