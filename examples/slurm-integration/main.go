// SLURM integration: the Aequus priority and job-completion plug-ins inside
// a SLURM-like scheduler, compared against the classic local-fairshare
// baseline (Section III-A).
//
// Two clusters run the same workload on a simulated clock. In the Aequus
// configuration the multifactor priority plug-in calls libaequus for a
// global fairshare factor and the job-completion plug-in reports usage back;
// in the baseline each cluster sees only its own history. A user who hogs
// cluster 1 keeps winning on cluster 2 under local fairshare — and stops
// winning under Aequus.
//
// Run with: go run ./examples/slurm-integration
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/services/irs"
	"repro/internal/slurm"
	"repro/internal/usage"
)

func main() {
	fmt.Println("=== Aequus plug-ins (global fairshare) ===")
	run(true)
	fmt.Println("\n=== local fairshare baseline ===")
	run(false)
	fmt.Println("\nWith Aequus, greedy's history on cluster-1 follows him to cluster-2,")
	fmt.Println("so modest's jobs run first there. The local baseline forgets at the")
	fmt.Println("cluster boundary and lets greedy win on cluster-2 again.")
}

func run(aequus bool) {
	start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	kernel := eventsim.New(start)
	pol, err := policy.FromShares(map[string]float64{"greedy": 0.5, "modest": 0.5})
	if err != nil {
		log.Fatal(err)
	}

	// Two single-core clusters so priority order fully determines who runs.
	mkSched := func(name string) (*slurm.Scheduler, *cluster.Cluster) {
		cl, err := cluster.New(name, 1, kernel)
		if err != nil {
			log.Fatal(err)
		}
		var fs slurm.FairshareProvider
		var jobcomp []slurm.JobCompHandler
		if aequus {
			site, err := core.NewSite(core.SiteConfig{
				Name: name, Policy: pol, Clock: kernel.Clock(),
				BinWidth: time.Minute, Contribute: true, UseGlobal: true,
				Decay: usage.ExponentialHalfLife{HalfLife: 12 * time.Hour},
				ResolveEndpoint: irs.EndpointFunc(func(_, local string) (string, error) {
					return local, nil
				}),
			})
			if err != nil {
				log.Fatal(err)
			}
			sites = append(sites, site)
			fs = slurm.AequusFairshare{Lib: site.Lib}
			jobcomp = []slurm.JobCompHandler{slurm.AequusJobComp{Lib: site.Lib}}
		} else {
			lf := slurm.NewLocalFairshare(map[string]float64{"greedy": 0.5, "modest": 0.5},
				usage.ExponentialHalfLife{HalfLife: 12 * time.Hour}, time.Minute, kernel.Clock())
			fs = lf
			jobcomp = []slurm.JobCompHandler{lf}
		}
		s := slurm.New(slurm.Config{
			Cluster:  cl,
			Priority: &slurm.Multifactor{FS: fs, Weights: sched.FairshareOnly()},
			JobComp:  jobcomp,
		})
		return s, cl
	}

	sites = nil
	s1, _ := mkSched("cluster-1")
	s2, c2 := mkSched("cluster-2")
	if aequus {
		core.FullMesh(sites)
		kernel.Every(time.Minute, func(time.Time) {
			for _, s := range sites {
				_ = s.Exchange()
				_ = s.Refresh()
			}
		}, nil)
	}

	// Phase 1: greedy monopolizes cluster-1 for two hours.
	id := int64(0)
	for i := 0; i < 8; i++ {
		id++
		s1.Submit(&sched.Job{ID: id, LocalUser: "greedy", GridUser: "greedy",
			Procs: 1, Duration: 15 * time.Minute, Submit: kernel.Now()})
	}
	kernel.Run(start.Add(2 * time.Hour))

	// Phase 2: both users submit to cluster-2 simultaneously.
	var order []string
	c2.OnComplete(func(j *sched.Job) { order = append(order, j.LocalUser) })
	for i := 0; i < 3; i++ {
		id++
		s2.Submit(&sched.Job{ID: id, LocalUser: "greedy", GridUser: "greedy",
			Procs: 1, Duration: 10 * time.Minute, Submit: kernel.Now()})
		id++
		s2.Submit(&sched.Job{ID: id, LocalUser: "modest", GridUser: "modest",
			Procs: 1, Duration: 10 * time.Minute, Submit: kernel.Now()})
	}
	kernel.Run(start.Add(4 * time.Hour))

	fmt.Printf("cluster-2 completion order: %v\n", order)
}

// sites collects the Aequus stacks of the current run so they can be meshed.
var sites []*core.Site
