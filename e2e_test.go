package repro

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndBinaries builds the real executables and drives a two-site
// deployment over loopback HTTP: aequusd daemons exchange usage, aequusctl
// stores mappings, reports usage and queries fairshare — the full
// "integration" story of Section III without any test doubles.
func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped in -short mode")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		return out
	}
	aequusd := build("aequusd")
	aequusctl := build("aequusctl")
	tracegen := build("tracegen")

	policyFile := filepath.Join(dir, "policy.txt")
	if err := os.WriteFile(policyFile, []byte("/alice 1\n/bob 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	portA, portB := freePort(t), freePort(t)
	urlA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	urlB := fmt.Sprintf("http://127.0.0.1:%d", portB)

	startDaemon := func(site string, port int, peer string) *exec.Cmd {
		cmd := exec.Command(aequusd,
			"-site", site,
			"-listen", fmt.Sprintf("127.0.0.1:%d", port),
			"-policy", policyFile,
			"-peers", peer,
			"-exchange-interval", "200ms",
			"-refresh-interval", "200ms",
			"-cache-ttl", "100ms",
			"-bin-width", "1s",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", site, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return cmd
	}
	startDaemon("site-a", portA, urlB)
	startDaemon("site-b", portB, urlA)
	waitHealthy(t, urlA)
	waitHealthy(t, urlB)

	ctl := func(args ...string) string {
		cmd := exec.Command(aequusctl, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("aequusctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Identity mappings on site A.
	ctl("-addr", urlA, "map", "alice", "site-a", "la01")
	ctl("-addr", urlA, "map", "bob", "site-a", "lb01")
	if got := strings.TrimSpace(ctl("-addr", urlA, "resolve", "site-a", "la01")); got != "alice" {
		t.Fatalf("resolve = %q", got)
	}

	// bob burns an hour of compute on site B.
	ctl("-addr", urlB, "report", "bob", "3600", "2")

	// Wait for exchange + pre-calculation to propagate B -> A.
	deadline := time.Now().Add(10 * time.Second)
	for {
		out := ctl("-addr", urlA, "fairshare")
		va, vb := parseValue(out, "alice"), parseValue(out, "bob")
		if va > vb {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alice (%g) never outranked bob (%g) on site A:\n%s", va, vb, out)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Run-time projection switch via the control client.
	out := ctl("-addr", urlA, "projection", "dictionary")
	if !strings.Contains(out, "dictionary") {
		t.Fatalf("projection switch output: %q", out)
	}

	// tracegen produces a parseable trace with the documented stats.
	traceFile := filepath.Join(dir, "trace.txt")
	cmd := exec.Command(tracegen, "-jobs", "500", "-span", "1h", "-out", traceFile, "-stats")
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("tracegen: %v\n%s", err, b)
	} else if !strings.Contains(string(b), "u65") {
		t.Fatalf("tracegen stats missing users:\n%s", b)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil || len(data) == 0 {
		t.Fatalf("trace file: %v (%d bytes)", err, len(data))
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// parseValue extracts the VALUE column for a user from aequusctl fairshare
// table output.
func parseValue(out, user string) float64 {
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 && f[0] == user {
			var v float64
			fmt.Sscanf(f[1], "%f", &v)
			return v
		}
	}
	return -1
}
