// Command experiments regenerates the paper's tables and figures. Run a
// single experiment by id or everything in paper order.
//
// Usage:
//
//	experiments [-scale quick|full] [tableI|tableII|tableIII|figure4..7|
//	             figure10|figure11|figure12|figurePartial|figure13|
//	             production|ablations|all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	scaleArg := flag.String("scale", "quick", "experiment scale: quick|full")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleArg {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		log.Fatalf("experiments: unknown scale %q", *scaleArg)
	}

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	run := func(r *experiments.Report, err error) {
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		if err := r.Render(os.Stdout); err != nil {
			log.Fatalf("experiments: %v", err)
		}
	}

	switch which {
	case "all":
		reports, err := experiments.All(sc)
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		for _, r := range reports {
			if err := r.Render(os.Stdout); err != nil {
				log.Fatalf("experiments: %v", err)
			}
		}
	case "tableI":
		run(experiments.TableI())
	case "tableII":
		run(experiments.TableII(sc))
	case "tableIII":
		run(experiments.TableIII(sc))
	case "periodicity":
		run(experiments.Periodicity(sc))
	case "figure4":
		run(experiments.Figure4(sc))
	case "figure5":
		run(experiments.Figure5(sc))
	case "figure6":
		run(experiments.Figure6(sc))
	case "figure7":
		run(experiments.Figure7(sc))
	case "figure10":
		r, _, err := experiments.Figure10Baseline(sc)
		run(r, err)
	case "figure11":
		run(experiments.Figure11UpdateDelay(sc))
	case "figure12":
		r, _, err := experiments.Figure12NonOptimalPolicy(sc)
		run(r, err)
	case "figurePartial":
		r, _, err := experiments.FigurePartial(sc)
		run(r, err)
	case "figure13":
		r, _, err := experiments.Figure13Bursty(sc)
		run(r, err)
	case "production":
		run(experiments.ProductionStats(sc))
	case "ablations":
		run(experiments.AblationProjection(sc))
		run(experiments.AblationDistanceWeight(sc))
		run(experiments.AblationDecay(sc))
		run(experiments.AblationCacheTTL(sc))
		run(experiments.AblationDispatch(sc))
		run(experiments.AblationRM(sc))
		run(experiments.AblationHierarchy(sc))
		run(experiments.AblationBackfill(sc))
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", which)
		os.Exit(2)
	}
}
