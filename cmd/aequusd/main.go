// Command aequusd runs one site's full Aequus service stack (PDS, USS, UMS,
// FCS, IRS) over HTTP — the deployment unit installed alongside each
// cluster's resource manager. Peers are other aequusd instances; usage is
// exchanged periodically through the USS layer. The server exposes
// Prometheus metrics at /metrics, liveness at /healthz, per-service
// readiness at /readyz and trace/drift introspection at /debug/aequus, and
// logs structured records via log/slog.
//
// Example:
//
//	aequusd -site hpc2n -listen :7470 -policy policy.txt \
//	        -peers http://other-site:7470 -half-life 168h -log-format json
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/durability"
	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/services/httpapi"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
	"repro/internal/vector"
)

func main() {
	var (
		site          = flag.String("site", "local", "site name")
		listen        = flag.String("listen", ":7470", "HTTP listen address")
		policyFile    = flag.String("policy", "", "policy file (text format: 'path share' lines)")
		peers         = flag.String("peers", "", "comma-separated base URLs of peer aequusd instances")
		contribute    = flag.Bool("contribute", true, "serve usage records to peers")
		useGlobal     = flag.Bool("use-global", true, "consider global usage for prioritization")
		projection    = flag.String("projection", "percental", "vector projection: dictionary|bitwise|percental")
		halfLife      = flag.Duration("half-life", 7*24*time.Hour, "usage decay half-life (0 disables decay, keeping usage deltas sparse so steady-state refreshes run incrementally)")
		binWidth      = flag.Duration("bin-width", time.Hour, "usage histogram interval")
		exchangeEvery = flag.Duration("exchange-interval", time.Minute, "peer usage exchange period")
		refreshEvery  = flag.Duration("refresh-interval", time.Minute, "fairshare pre-calculation period")
		libTTL        = flag.Duration("cache-ttl", 30*time.Second, "libaequus cache TTL")
		k             = flag.Float64("distance-weight", 0.5, "fairshare distance weight k")
		resolution    = flag.Float64("resolution", 10000, "fairshare value resolution")
		logFormat     = flag.String("log-format", "text", "log output format: text|json")
		logLevel      = flag.String("log-level", "info", "log level: debug|info|warn|error")
		readyStale    = flag.Duration("ready-max-stale", 0, "max pre-computation age before /readyz reports 503 (default 3x refresh-interval)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

		dataDir      = flag.String("data-dir", "", "directory for the usage WAL and snapshots (empty = in-memory only; state is lost on restart)")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy: always (one fsync per commit, one per batch) | none (page cache only)")
		snapInterval = flag.Duration("snapshot-interval", 15*time.Minute, "how often to compact the WAL into a snapshot (0 disables periodic snapshots)")

		retryMax      = flag.Int("retry-max", 3, "max attempts for idempotent remote calls (1 disables retries)")
		retryBase     = flag.Duration("retry-base", 100*time.Millisecond, "initial retry backoff delay")
		retryMaxDelay = flag.Duration("retry-max-delay", 5*time.Second, "retry backoff delay cap")
		breakThresh   = flag.Int("breaker-threshold", 5, "consecutive failures that open a peer's circuit (0 disables breaking)")
		breakCooldown = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit waits before a half-open probe")
		peerTimeout   = flag.Duration("peer-timeout", 5*time.Second, "per-peer pull timeout inside an exchange round")
		exchDeadline  = flag.Duration("exchange-deadline", 30*time.Second, "deadline for a whole exchange round (0 = unbounded)")
		staleFallback = flag.Bool("lib-stale-fallback", true, "serve expired libaequus cache entries when services are unreachable")

		traceBuffer = flag.Int("trace-buffer", 4096, "span recorder ring-buffer capacity (0 disables tracing and /debug/aequus)")
		traceSample = flag.Int("trace-sample", 1, "record every Nth trace (1 = all)")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		slog.Error("aequusd: bad logging flags", "err", err)
		os.Exit(1)
	}
	logger = logger.With(slog.String("site", *site))
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	pol := policy.NewTree()
	if *policyFile != "" {
		f, err := os.Open(*policyFile)
		if err != nil {
			fatal("opening policy", err)
		}
		pol, err = policy.ReadText(f)
		f.Close()
		if err != nil {
			fatal("parsing policy", err)
		}
	}

	proj, ok := vector.ByName(*projection)
	if !ok {
		fatal("unknown projection", errors.New(*projection))
	}

	retry := resilience.RetryPolicy{
		MaxAttempts: *retryMax,
		BaseDelay:   *retryBase,
		MaxDelay:    *retryMaxDelay,
	}
	telemetry.RegisterRuntimeMetrics(nil)
	var spans *span.Recorder
	if *traceBuffer > 0 {
		spans = span.NewRecorder(span.Config{Capacity: *traceBuffer, SampleEvery: *traceSample})
	}
	// Half-life 0 means no decay at all. Beyond being a sensible reading of
	// the flag, it is the mode where only users with fresh completions move
	// between UMS pulls, so the FCS's incremental recalc path can engage;
	// under exponential decay every total changes every pull and refreshes
	// are always full rebuilds.
	var decay usage.Decay = usage.ExponentialHalfLife{HalfLife: *halfLife}
	if *halfLife <= 0 {
		decay = usage.None{}
	}

	var durable *durability.Log
	if *dataDir != "" {
		syncPolicy, err := durability.ParseSyncPolicy(*walSync)
		if err != nil {
			fatal("parsing -wal-sync", err)
		}
		durable, err = durability.Open(durability.Options{
			Dir:   *dataDir,
			Sync:  syncPolicy,
			Spans: spans,
		})
		if err != nil {
			fatal("opening durable state", err)
		}
		defer durable.Close()
		_, total := durable.ReplayProgress()
		logger.Info("durable state opened",
			slog.String("dir", *dataDir),
			slog.String("wal_sync", *walSync),
			slog.Int64("wal_tail_records", total))
	}

	s, err := core.NewSite(core.SiteConfig{
		Name:          *site,
		Policy:        pol,
		BinWidth:      *binWidth,
		Decay:         decay,
		Contribute:    *contribute,
		UseGlobal:     *useGlobal,
		Projection:    proj,
		Fairshare:     fairshare.Config{DistanceWeight: *k, Resolution: *resolution},
		UMSCacheTTL:   *refreshEvery,
		FCSCacheTTL:   *refreshEvery,
		LibCacheTTL:   *libTTL,
		PolicyFetcher: httpapi.PolicyFetcher(nil),
		PeerTimeout:   *peerTimeout,
		PeerBreaker: resilience.BreakerConfig{
			Threshold: *breakThresh,
			Cooldown:  *breakCooldown,
		},
		LibRetry:        retry,
		LibStaleIfError: *staleFallback,
		FCSSourceRetry:  retry,
		Spans:           spans,
		Durable:         durable,
	})
	if err != nil {
		fatal("assembling site", err)
	}
	if durable != nil {
		// Replay the WAL tail in the background: the HTTP server comes up
		// immediately and serves the recovered snapshot (peers see the
		// pre-crash watermark), while /readyz reports "recovering" until
		// the tail is applied and the first post-replay fairshare
		// pre-calculation has published.
		go func() {
			t0 := time.Now()
			if err := s.Recover(); err != nil {
				fatal("replaying WAL", err)
			}
			if err := s.Refresh(); err != nil {
				logger.Warn("post-recovery refresh failed", "err", err)
			}
			durable.MarkReady()
			logger.Info("recovery complete", slog.Duration("took", time.Since(t0)))
		}()
		go periodic(*snapInterval, func() {
			if err := s.SnapshotDurable(); err != nil {
				logger.Warn("snapshot failed", "err", err)
			}
		})
	}
	for _, name := range []string{"pds", "uss", "ums", "fcs", "irs"} {
		logger.Info("service started", slog.String("service", name))
	}

	for _, peer := range splitList(*peers) {
		// Peer pulls are idempotent (watermark-based), so they retry; the
		// per-peer breaker lives in the USS, keyed by site, not here.
		s.ConnectPeer(httpapi.NewClientWith(peer, peer, httpapi.ClientOptions{Retry: retry}))
		logger.Info("peering", slog.String("peer", peer))
	}

	if *pprofAddr != "" {
		// The pprof handlers live on the DefaultServeMux; the service API
		// runs on its own mux, so profiling stays off the public port.
		go func() {
			logger.Info("pprof listening", slog.String("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Warn("pprof server", "err", err)
			}
		}()
	}

	go periodic(*exchangeEvery, func() {
		ctx := context.Background()
		if *exchDeadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *exchDeadline)
			defer cancel()
		}
		if err := s.ExchangeContext(ctx); err != nil {
			logger.Warn("exchange failed", "err", err)
		}
	})
	go periodic(*refreshEvery, func() {
		if err := s.Refresh(); err != nil {
			logger.Warn("refresh failed", "err", err)
		}
	})

	maxStale := *readyStale
	if maxStale == 0 {
		maxStale = 3 * *refreshEvery
	}
	srv := httpapi.NewServerWith(s.PDS, s.USS, s.UMS, s.FCS, s.IRS, httpapi.ServerOptions{
		Log:           logger,
		ReadyMaxStale: maxStale,
		Spans:         spans,
		Durability:    durable,
	})
	logger.Info("serving",
		slog.String("listen", *listen),
		slog.Bool("contribute", *contribute),
		slog.Bool("use_global", *useGlobal),
		slog.String("projection", proj.Name()),
		slog.Duration("ready_max_stale", maxStale))

	hs := &http.Server{Addr: *listen, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutdown requested")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serving", err)
	}
	for _, name := range []string{"irs", "fcs", "ums", "uss", "pds"} {
		logger.Info("service stopped", slog.String("service", name))
	}
	logger.Info("shutdown complete")
}

func periodic(every time.Duration, fn func()) {
	if every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		fn()
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
