// Command aequusd runs one site's full Aequus service stack (PDS, USS, UMS,
// FCS, IRS) over HTTP — the deployment unit installed alongside each
// cluster's resource manager. Peers are other aequusd instances; usage is
// exchanged periodically through the USS layer.
//
// Example:
//
//	aequusd -site hpc2n -listen :7470 -policy policy.txt \
//	        -peers http://other-site:7470 -half-life 168h
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/services/httpapi"
	"repro/internal/usage"
	"repro/internal/vector"
)

func main() {
	var (
		site          = flag.String("site", "local", "site name")
		listen        = flag.String("listen", ":7470", "HTTP listen address")
		policyFile    = flag.String("policy", "", "policy file (text format: 'path share' lines)")
		peers         = flag.String("peers", "", "comma-separated base URLs of peer aequusd instances")
		contribute    = flag.Bool("contribute", true, "serve usage records to peers")
		useGlobal     = flag.Bool("use-global", true, "consider global usage for prioritization")
		projection    = flag.String("projection", "percental", "vector projection: dictionary|bitwise|percental")
		halfLife      = flag.Duration("half-life", 7*24*time.Hour, "usage decay half-life")
		binWidth      = flag.Duration("bin-width", time.Hour, "usage histogram interval")
		exchangeEvery = flag.Duration("exchange-interval", time.Minute, "peer usage exchange period")
		refreshEvery  = flag.Duration("refresh-interval", time.Minute, "fairshare pre-calculation period")
		libTTL        = flag.Duration("cache-ttl", 30*time.Second, "libaequus cache TTL")
		k             = flag.Float64("distance-weight", 0.5, "fairshare distance weight k")
		resolution    = flag.Float64("resolution", 10000, "fairshare value resolution")
	)
	flag.Parse()

	pol := policy.NewTree()
	if *policyFile != "" {
		f, err := os.Open(*policyFile)
		if err != nil {
			log.Fatalf("aequusd: %v", err)
		}
		pol, err = policy.ReadText(f)
		f.Close()
		if err != nil {
			log.Fatalf("aequusd: parsing policy: %v", err)
		}
	}

	proj, ok := vector.ByName(*projection)
	if !ok {
		log.Fatalf("aequusd: unknown projection %q", *projection)
	}

	s, err := core.NewSite(core.SiteConfig{
		Name:          *site,
		Policy:        pol,
		BinWidth:      *binWidth,
		Decay:         usage.ExponentialHalfLife{HalfLife: *halfLife},
		Contribute:    *contribute,
		UseGlobal:     *useGlobal,
		Projection:    proj,
		Fairshare:     fairshare.Config{DistanceWeight: *k, Resolution: *resolution},
		UMSCacheTTL:   *refreshEvery,
		FCSCacheTTL:   *refreshEvery,
		LibCacheTTL:   *libTTL,
		PolicyFetcher: httpapi.PolicyFetcher(nil),
	})
	if err != nil {
		log.Fatalf("aequusd: %v", err)
	}

	for _, peer := range splitList(*peers) {
		s.ConnectPeer(httpapi.NewClient(peer, peer))
		log.Printf("aequusd: peering with %s", peer)
	}

	go periodic(*exchangeEvery, func() {
		if err := s.Exchange(); err != nil {
			log.Printf("aequusd: exchange: %v", err)
		}
	})
	go periodic(*refreshEvery, func() {
		if err := s.Refresh(); err != nil {
			log.Printf("aequusd: refresh: %v", err)
		}
	})

	srv := httpapi.NewServer(s.PDS, s.USS, s.UMS, s.FCS, s.IRS)
	log.Printf("aequusd: site %s serving on %s (contribute=%v use-global=%v projection=%s)",
		*site, *listen, *contribute, *useGlobal, proj.Name())
	if err := http.ListenAndServe(*listen, srv); err != nil {
		log.Fatalf("aequusd: %v", err)
	}
}

func periodic(every time.Duration, fn func()) {
	if every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		fn()
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
