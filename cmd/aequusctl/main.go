// Command aequusctl is the control client for a running aequusd: it queries
// fairshare priorities, policies and usage, stores identity mappings,
// triggers exchanges, switches the projection algorithm at run time, and
// inspects a site's telemetry.
//
// Usage:
//
//	aequusctl -addr http://localhost:7470 fairshare [user]
//	aequusctl -addr ... policy
//	aequusctl -addr ... resolve <site> <localUser>
//	aequusctl -addr ... map <gridID> <site> <localUser>
//	aequusctl -addr ... report <gridUser> <durationSeconds> [procs]
//	aequusctl -addr ... exchange
//	aequusctl -addr ... projection <dictionary|bitwise|percental>
//	aequusctl -addr ... metrics [prefix]
//	aequusctl -addr ... ready
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/policy"
	"repro/internal/services/httpapi"
)

func main() {
	addr := flag.String("addr", "http://localhost:7470", "aequusd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := httpapi.NewClient(*addr, "aequusctl")

	var err error
	switch args[0] {
	case "fairshare":
		err = cmdFairshare(c, args[1:])
	case "policy":
		err = cmdPolicy(c)
	case "resolve":
		err = cmdResolve(c, args[1:])
	case "map":
		err = cmdMap(c, args[1:])
	case "report":
		err = cmdReport(c, args[1:])
	case "exchange":
		err = c.TriggerExchange(context.Background())
	case "projection":
		err = cmdProjection(c, args[1:])
	case "metrics":
		err = cmdMetrics(c, args[1:])
	case "ready":
		err = cmdReady(c)
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("aequusctl: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aequusctl [-addr URL] <fairshare|policy|resolve|map|report|exchange|projection|metrics|ready> [args]")
	os.Exit(2)
}

func cmdFairshare(c *httpapi.Client, args []string) error {
	if len(args) == 1 {
		resp, err := c.Priority(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("user=%s value=%.6f priority=%.6f vector=%v computed=%s\n",
			resp.User, resp.Value, resp.Priority, resp.Vector, resp.ComputedAt.Format(time.RFC3339))
		return nil
	}
	tab, err := c.Table()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "USER\tVALUE\tPRIORITY\tVECTOR")
	for _, e := range tab.Entries {
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%v\n", e.User, e.Value, e.Priority, e.Vector)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("projection=%s computed=%s\n", tab.Projection, tab.ComputedAt.Format(time.RFC3339))
	return nil
}

func cmdPolicy(c *httpapi.Client) error {
	t, err := c.Policy()
	if err != nil {
		return err
	}
	return policy.WriteText(os.Stdout, t)
}

func cmdResolve(c *httpapi.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("resolve needs <site> <localUser>")
	}
	g, err := c.Resolve(args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Println(g)
	return nil
}

func cmdMap(c *httpapi.Client, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("map needs <gridID> <site> <localUser>")
	}
	return c.StoreMapping(args[0], args[1], args[2])
}

func cmdReport(c *httpapi.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("report needs <gridUser> <durationSeconds> [procs]")
	}
	dur, err := strconv.ParseFloat(args[1], 64)
	if err != nil || dur < 0 {
		return fmt.Errorf("bad duration %q", args[1])
	}
	procs := 1
	if len(args) >= 3 {
		procs, err = strconv.Atoi(args[2])
		if err != nil || procs < 1 {
			return fmt.Errorf("bad procs %q", args[2])
		}
	}
	start := time.Now().Add(-time.Duration(dur * float64(time.Second)))
	return c.ReportJobErr(args[0], start, time.Duration(dur*float64(time.Second)), procs)
}

// cmdMetrics fetches /metrics and pretty-prints it: one aligned
// series/value row per sample, grouped under the family's HELP text. An
// optional prefix argument filters by metric name.
func cmdMetrics(c *httpapi.Client, args []string) error {
	prefix := ""
	if len(args) >= 1 {
		prefix = args[0]
	}
	text, err := c.MetricsText(context.Background())
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if prefix != "" && !strings.HasPrefix(name, prefix) {
				continue
			}
			fmt.Fprintf(tw, "# %s\t— %s\n", name, help)
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		series, value := line[:idx], line[idx+1:]
		if prefix != "" && !strings.HasPrefix(series, prefix) {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\n", series, value)
	}
	return sc.Err()
}

// cmdReady fetches /readyz and prints the per-service readiness breakdown,
// exiting non-zero when the site is not ready.
func cmdReady(c *httpapi.Client) error {
	r, err := c.Ready(context.Background())
	if err != nil {
		return err
	}
	names := make([]string, 0, len(r.Components))
	for n := range r.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SERVICE\tREADY\tAGE\tREASON")
	for _, n := range names {
		comp := r.Components[n]
		age := "-"
		if !comp.ComputedAt.IsZero() {
			age = fmt.Sprintf("%.1fs", comp.AgeSeconds)
		}
		fmt.Fprintf(tw, "%s\t%v\t%s\t%s\n", n, comp.Ready, age, comp.Reason)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !r.Ready {
		return fmt.Errorf("site not ready")
	}
	fmt.Println("ready")
	return nil
}

func cmdProjection(c *httpapi.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("projection needs a name")
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/fairshare/projection", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q}`, args[0])))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("projection switch failed: %s", resp.Status)
	}
	fmt.Printf("projection set to %s\n", args[0])
	return nil
}
