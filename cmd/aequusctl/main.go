// Command aequusctl is the control client for a running aequusd: it queries
// fairshare priorities, policies and usage, stores identity mappings,
// triggers exchanges and switches the projection algorithm at run time.
//
// Usage:
//
//	aequusctl -addr http://localhost:7470 fairshare [user]
//	aequusctl -addr ... policy
//	aequusctl -addr ... resolve <site> <localUser>
//	aequusctl -addr ... map <gridID> <site> <localUser>
//	aequusctl -addr ... report <gridUser> <durationSeconds> [procs]
//	aequusctl -addr ... exchange
//	aequusctl -addr ... projection <dictionary|bitwise|percental>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/policy"
	"repro/internal/services/httpapi"
)

func main() {
	addr := flag.String("addr", "http://localhost:7470", "aequusd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := httpapi.NewClient(*addr, "aequusctl")

	var err error
	switch args[0] {
	case "fairshare":
		err = cmdFairshare(c, args[1:])
	case "policy":
		err = cmdPolicy(c)
	case "resolve":
		err = cmdResolve(c, args[1:])
	case "map":
		err = cmdMap(c, args[1:])
	case "report":
		err = cmdReport(c, args[1:])
	case "exchange":
		err = c.TriggerExchange()
	case "projection":
		err = cmdProjection(c, args[1:])
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("aequusctl: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aequusctl [-addr URL] <fairshare|policy|resolve|map|report|exchange|projection> [args]")
	os.Exit(2)
}

func cmdFairshare(c *httpapi.Client, args []string) error {
	if len(args) == 1 {
		resp, err := c.Priority(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("user=%s value=%.6f priority=%.6f vector=%v computed=%s\n",
			resp.User, resp.Value, resp.Priority, resp.Vector, resp.ComputedAt.Format(time.RFC3339))
		return nil
	}
	tab, err := c.Table()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "USER\tVALUE\tPRIORITY\tVECTOR")
	for _, e := range tab.Entries {
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%v\n", e.User, e.Value, e.Priority, e.Vector)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("projection=%s computed=%s\n", tab.Projection, tab.ComputedAt.Format(time.RFC3339))
	return nil
}

func cmdPolicy(c *httpapi.Client) error {
	t, err := c.Policy()
	if err != nil {
		return err
	}
	return policy.WriteText(os.Stdout, t)
}

func cmdResolve(c *httpapi.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("resolve needs <site> <localUser>")
	}
	g, err := c.Resolve(args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Println(g)
	return nil
}

func cmdMap(c *httpapi.Client, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("map needs <gridID> <site> <localUser>")
	}
	return c.StoreMapping(args[0], args[1], args[2])
}

func cmdReport(c *httpapi.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("report needs <gridUser> <durationSeconds> [procs]")
	}
	dur, err := strconv.ParseFloat(args[1], 64)
	if err != nil || dur < 0 {
		return fmt.Errorf("bad duration %q", args[1])
	}
	procs := 1
	if len(args) >= 3 {
		procs, err = strconv.Atoi(args[2])
		if err != nil || procs < 1 {
			return fmt.Errorf("bad procs %q", args[2])
		}
	}
	start := time.Now().Add(-time.Duration(dur * float64(time.Second)))
	return c.ReportJobErr(args[0], start, time.Duration(dur*float64(time.Second)), procs)
}

func cmdProjection(c *httpapi.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("projection needs a name")
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/fairshare/projection", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q}`, args[0])))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("projection switch failed: %s", resp.Status)
	}
	fmt.Printf("projection set to %s\n", args[0])
	return nil
}
