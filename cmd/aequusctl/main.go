// Command aequusctl is the control client for a running aequusd: it queries
// fairshare priorities, policies and usage, stores identity mappings,
// triggers exchanges, switches the projection algorithm at run time, and
// inspects a site's telemetry.
//
// Usage:
//
//	aequusctl -addr http://localhost:7470 fairshare [user]
//	aequusctl -addr ... policy
//	aequusctl -addr ... resolve <site> <localUser>
//	aequusctl -addr ... map <gridID> <site> <localUser>
//	aequusctl -addr ... report <gridUser> <durationSeconds> [procs]
//	aequusctl -addr ... exchange
//	aequusctl -addr ... projection <dictionary|bitwise|percental>
//	aequusctl -addr ... metrics [prefix]
//	aequusctl -addr ... ready
//	aequusctl -addr ... trace [n]
//	aequusctl -addr ... drift
//	aequusctl -addr ... fcs
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/policy"
	"repro/internal/services/httpapi"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "http://localhost:7470", "aequusd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := httpapi.NewClient(*addr, "aequusctl")

	var err error
	switch args[0] {
	case "fairshare":
		err = cmdFairshare(c, args[1:])
	case "policy":
		err = cmdPolicy(c)
	case "resolve":
		err = cmdResolve(c, args[1:])
	case "map":
		err = cmdMap(c, args[1:])
	case "report":
		err = cmdReport(c, args[1:])
	case "exchange":
		err = c.TriggerExchange(context.Background())
	case "projection":
		err = cmdProjection(c, args[1:])
	case "metrics":
		err = cmdMetrics(c, args[1:])
	case "ready":
		err = cmdReady(c)
	case "trace":
		err = cmdTrace(c, args[1:])
	case "drift":
		err = cmdDrift(c)
	case "fcs":
		err = cmdFcs(c)
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("aequusctl: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aequusctl [-addr URL] <fairshare|policy|resolve|map|report|exchange|projection|metrics|ready|trace|drift|fcs> [args]")
	os.Exit(2)
}

func cmdFairshare(c *httpapi.Client, args []string) error {
	if len(args) == 1 {
		resp, err := c.Priority(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("user=%s value=%.6f priority=%.6f vector=%v computed=%s\n",
			resp.User, resp.Value, resp.Priority, resp.Vector, resp.ComputedAt.Format(time.RFC3339))
		return nil
	}
	tab, err := c.Table()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "USER\tVALUE\tPRIORITY\tVECTOR")
	for _, e := range tab.Entries {
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%v\n", e.User, e.Value, e.Priority, e.Vector)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("projection=%s computed=%s\n", tab.Projection, tab.ComputedAt.Format(time.RFC3339))
	return nil
}

func cmdPolicy(c *httpapi.Client) error {
	t, err := c.Policy()
	if err != nil {
		return err
	}
	return policy.WriteText(os.Stdout, t)
}

func cmdResolve(c *httpapi.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("resolve needs <site> <localUser>")
	}
	g, err := c.Resolve(args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Println(g)
	return nil
}

func cmdMap(c *httpapi.Client, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("map needs <gridID> <site> <localUser>")
	}
	return c.StoreMapping(args[0], args[1], args[2])
}

func cmdReport(c *httpapi.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("report needs <gridUser> <durationSeconds> [procs]")
	}
	dur, err := strconv.ParseFloat(args[1], 64)
	if err != nil || dur < 0 {
		return fmt.Errorf("bad duration %q", args[1])
	}
	procs := 1
	if len(args) >= 3 {
		procs, err = strconv.Atoi(args[2])
		if err != nil || procs < 1 {
			return fmt.Errorf("bad procs %q", args[2])
		}
	}
	start := time.Now().Add(-time.Duration(dur * float64(time.Second)))
	return c.ReportJobErr(args[0], start, time.Duration(dur*float64(time.Second)), procs)
}

// cmdMetrics fetches /metrics and pretty-prints it: one aligned
// series/value row per sample, grouped under the family's HELP text. An
// optional prefix argument filters by metric name.
func cmdMetrics(c *httpapi.Client, args []string) error {
	prefix := ""
	if len(args) >= 1 {
		prefix = args[0]
	}
	text, err := c.MetricsText(context.Background())
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if prefix != "" && !strings.HasPrefix(name, prefix) {
				continue
			}
			fmt.Fprintf(tw, "# %s\t— %s\n", name, help)
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		series, value := line[:idx], line[idx+1:]
		if prefix != "" && !strings.HasPrefix(series, prefix) {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\n", series, value)
	}
	return sc.Err()
}

// cmdReady fetches /readyz and prints the per-service readiness breakdown,
// exiting non-zero when the site is not ready.
func cmdReady(c *httpapi.Client) error {
	r, err := c.Ready(context.Background())
	if err != nil {
		return err
	}
	names := make([]string, 0, len(r.Components))
	for n := range r.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SERVICE\tREADY\tAGE\tREASON")
	for _, n := range names {
		comp := r.Components[n]
		age := "-"
		if !comp.ComputedAt.IsZero() {
			age = fmt.Sprintf("%.1fs", comp.AgeSeconds)
		}
		fmt.Fprintf(tw, "%s\t%v\t%s\t%s\n", n, comp.Ready, age, comp.Reason)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !r.Ready {
		return fmt.Errorf("site not ready")
	}
	fmt.Println("ready")
	return nil
}

// cmdTrace fetches the n most recent traces (default 5) from /debug/aequus
// and renders each as an indented span tree reconstructed from parent links,
// with durations, attributes and errors inline.
func cmdTrace(c *httpapi.Client, args []string) error {
	n := 5
	if len(args) >= 1 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return fmt.Errorf("bad trace count %q", args[0])
		}
		n = v
	}
	resp, err := c.DebugTraces(context.Background(), n)
	if err != nil {
		return err
	}
	if len(resp.Traces) == 0 {
		fmt.Println("no traces recorded (is aequusd running with -trace-buffer > 0?)")
		return nil
	}
	for i, tr := range resp.Traces {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("trace %s (%d spans)\n", tr.TraceID, len(tr.Spans))
		children := map[string][]wire.DebugSpan{}
		byID := map[string]bool{}
		for _, sp := range tr.Spans {
			byID[sp.SpanID] = true
		}
		for _, sp := range tr.Spans {
			parent := sp.ParentID
			if !byID[parent] {
				parent = "" // orphan (parent evicted or remote): promote to root
			}
			children[parent] = append(children[parent], sp)
		}
		var walk func(parent string, depth int)
		walk = func(parent string, depth int) {
			for _, sp := range children[parent] {
				line := fmt.Sprintf("%s%s  %.3fms", strings.Repeat("  ", depth+1),
					sp.Name, sp.DurationSeconds*1000)
				for _, a := range sp.Attrs {
					line += fmt.Sprintf(" %s=%s", a.Key, a.Value)
				}
				if sp.Error != "" {
					line += " error=" + sp.Error
				}
				fmt.Println(line)
				walk(sp.SpanID, depth+1)
			}
		}
		walk("", 0)
	}
	return nil
}

// cmdDrift prints the site's fairness-drift table: per-user |usage share −
// target share| at the last snapshot, worst offender first.
func cmdDrift(c *httpapi.Client) error {
	d, err := c.DebugDrift(context.Background())
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "USER\tTARGET\tACTUAL\tERROR")
	for _, e := range d.Entries {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\n", e.User, e.Target, e.Actual, e.Error)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("max=%.4f mean=%.4f computed=%s\n",
		d.MaxError, d.MeanError, d.ComputedAt.Format(time.RFC3339))
	return nil
}

// cmdFcs prints the fairshare computation service's refresh health: how the
// last refresh ran (full or incremental), how many users it had to
// recompute, and how long it took — the page that tells an operator whether
// steady state is actually incremental.
func cmdFcs(c *httpapi.Client) error {
	s, err := c.DebugSummary(context.Background())
	if err != nil {
		return err
	}
	mode := s.FCSRefreshMode
	if mode == "" {
		mode = "-"
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "last refresh mode\t%s\n", mode)
	fmt.Fprintf(tw, "dirty users\t%d\n", s.FCSDirtyUsers)
	fmt.Fprintf(tw, "refresh duration\t%.3fms\n", s.FCSRefreshSeconds*1000)
	if s.FCSRefreshMode == "incremental" {
		fmt.Fprintf(tw, "  fold/rescore/materialize\t%.3f / %.3f / %.3fms\n",
			s.FCSFoldSeconds*1000, s.FCSRescoreSeconds*1000, s.FCSMaterializeSeconds*1000)
		fmt.Fprintf(tw, "  segments rebuilt/shared\t%d / %d\n",
			s.FCSMaterializedSegments, s.FCSSharedSegments)
	}
	fmt.Fprintf(tw, "snapshot computed\t%s\n", s.FCSComputedAt.Format(time.RFC3339))
	fmt.Fprintf(tw, "drift max/mean\t%.4f / %.4f\n", s.DriftMax, s.DriftMean)
	if s.FCSLastRefreshError != "" {
		fmt.Fprintf(tw, "last refresh error\t%s\n", s.FCSLastRefreshError)
	}
	return tw.Flush()
}

func cmdProjection(c *httpapi.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("projection needs a name")
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/fairshare/projection", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q}`, args[0])))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("projection switch failed: %s", resp.Status)
	}
	fmt.Printf("projection set to %s\n", args[0])
	return nil
}
