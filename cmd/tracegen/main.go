// Command tracegen generates synthetic workload traces from the paper's
// statistical models: the baseline 2012 national-grid model or the
// bursty-usage variant, optionally calibrated to the target usage shares and
// scaled to a desired load.
//
// Example:
//
//	tracegen -jobs 43200 -span 6h -model baseline -calibrate \
//	         -cores 240 -load 0.95 -out trace.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		jobs      = flag.Int("jobs", 43200, "number of jobs to generate")
		span      = flag.Duration("span", 6*time.Hour, "trace time span")
		start     = flag.String("start", "2013-01-01T00:00:00Z", "trace start time (RFC3339)")
		model     = flag.String("model", "baseline", "workload model: baseline|bursty")
		seed      = flag.Int64("seed", 42, "random seed")
		calibrate = flag.Bool("calibrate", true, "calibrate per-user usage shares to the model targets")
		cores     = flag.Int("cores", 0, "total cores for load scaling (0 = no scaling)")
		load      = flag.Float64("load", 0.95, "target load fraction for -cores scaling")
		maxDur    = flag.Duration("max-duration", 0, "clamp job durations (0 = span/4)")
		out       = flag.String("out", "", "output file (default stdout)")
		stats     = flag.Bool("stats", false, "print per-user statistics to stderr")
	)
	flag.Parse()

	startAt, err := time.Parse(time.RFC3339, *start)
	if err != nil {
		log.Fatalf("tracegen: bad -start: %v", err)
	}

	var m workload.Model
	switch *model {
	case "baseline":
		m = workload.NationalGrid2012(*span)
	case "bursty":
		m = workload.Bursty2012(*span)
	default:
		log.Fatalf("tracegen: unknown model %q", *model)
	}

	clamp := *maxDur
	if clamp <= 0 {
		clamp = *span / 4
	}
	tr, err := m.Generate(workload.GenerateOptions{
		TotalJobs:      *jobs,
		Start:          startAt,
		Span:           *span,
		Seed:           *seed,
		CalibrateUsage: *calibrate,
		MaxDuration:    clamp,
	})
	if err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	if *cores > 0 {
		tr = workload.ScaleToLoad(tr, *cores, *load, *span)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		log.Fatalf("tracegen: writing trace: %v", err)
	}

	if *stats {
		for _, s := range trace.UserStats(tr) {
			fmt.Fprintf(os.Stderr, "%-8s jobs=%6d (%.2f%%)  usage=%.4g core-s (%.2f%%)\n",
				s.User, s.Jobs, 100*s.JobShare, s.Usage, 100*s.UsageShare)
		}
	}
}
