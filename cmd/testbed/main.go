// Command testbed runs the emulated nation-wide environment: N virtual
// clusters, each with a full Aequus stack and a SLURM- or Maui-like local
// scheduler, driven by a synthetic workload (generated in-process or read
// from a trace file). It prints the usage-share and priority series plus
// summary statistics.
//
// Example (the paper's baseline configuration):
//
//	testbed -sites 6 -cores 40 -jobs 43200 -duration 6h -load 0.95
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/vector"
	"repro/internal/workload"
)

func main() {
	var (
		logFormat = flag.String("log-format", "text", "log output format: text|json")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		sites     = flag.Int("sites", 6, "number of clusters")
		cores     = flag.Int("cores", 40, "cores per cluster")
		jobs      = flag.Int("jobs", 43200, "synthetic trace size (ignored with -trace)")
		duration  = flag.Duration("duration", 6*time.Hour, "test length")
		load      = flag.Float64("load", 0.95, "offered load fraction")
		traceFile = flag.String("trace", "", "read workload from a trace file instead of generating")
		model     = flag.String("model", "baseline", "workload model: baseline|bursty")
		policyArg = flag.String("policy", "trace", "policy targets: trace|nonoptimal")
		rm        = flag.String("rm", "slurm", "resource manager substrate: slurm|maui")
		proj      = flag.String("projection", "percental", "vector projection")
		k         = flag.Float64("distance-weight", 0.5, "fairshare distance weight k")
		seed      = flag.Int64("seed", 42, "random seed")
		partial   = flag.Bool("partial", false, "run the partial-participation site modes")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		slog.Error("testbed: bad logging flags", "err", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

	var m workload.Model
	switch *model {
	case "baseline":
		m = workload.NationalGrid2012(*duration)
	case "bursty":
		m = workload.Bursty2012(*duration)
	default:
		fatal("unknown model", "model", *model)
	}

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal("opening trace", "err", err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fatal("reading trace", "err", err)
		}
	} else {
		var err error
		tr, err = m.Generate(workload.GenerateOptions{
			TotalJobs: *jobs, Start: start, Span: *duration, Seed: *seed,
			CalibrateUsage: true, MaxDuration: *duration / 4,
		})
		if err != nil {
			fatal("generating workload", "err", err)
		}
		tr = workload.ScaleToLoad(tr, *sites**cores, *load, *duration)
	}

	targets := map[string]float64{}
	switch *policyArg {
	case "trace":
		for _, u := range m.Users {
			targets[u.Name] = u.UsageFraction
		}
	case "nonoptimal":
		targets = workload.NonOptimalShares()
	default:
		fatal("unknown policy", "policy", *policyArg)
	}

	projection, ok := vector.ByName(*proj)
	if !ok {
		fatal("unknown projection", "projection", *proj)
	}

	cfg := testbed.Config{
		Sites: *sites, CoresPerSite: *cores, Start: start, Duration: *duration,
		PolicyShares: targets, Trace: tr, Seed: *seed,
		DistanceWeight: *k, Projection: projection, RM: testbed.RMKind(*rm),
	}
	if *partial {
		modes := make([]testbed.SiteMode, *sites)
		for i := range modes {
			modes[i] = testbed.SiteMode{Contribute: true, UseGlobal: true}
		}
		if *sites >= 2 {
			modes[*sites-2] = testbed.SiteMode{Contribute: false, UseGlobal: true}
			modes[*sites-1] = testbed.SiteMode{Contribute: true, UseGlobal: false}
		}
		cfg.SiteModes = modes
	}

	res, err := testbed.Run(cfg)
	if err != nil {
		fatal("run failed", "err", err)
	}

	users := res.UsageShares.Users()
	sort.Strings(users)
	fmt.Println("minute  " + header(users))
	if len(users) > 0 && res.UsageShares[users[0]] != nil {
		ref := res.UsageShares[users[0]]
		step := ref.Len() / 36
		if step < 1 {
			step = 1
		}
		for i := 0; i < ref.Len(); i += step {
			at := ref.Times[i]
			fmt.Printf("%6.0f  ", at.Sub(start).Minutes())
			for _, u := range users {
				fmt.Printf("%7.3f", res.UsageShares[u].Values[i])
			}
			for _, u := range users {
				if p := res.Priorities[u]; p != nil {
					fmt.Printf("%8.3f", p.At(at))
				}
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nsubmitted=%d completed=%d queued=%d utilization=%.3f sustained=%.0f/min peak=%.0f/min\n",
		res.Submitted, res.Completed, res.QueuedAtEnd, res.Utilization, res.SustainedRate, res.PeakRate)
}

func header(users []string) string {
	s := ""
	for _, u := range users {
		s += fmt.Sprintf("%7s", u+"↑")
	}
	for _, u := range users {
		s += fmt.Sprintf("%8s", u+"ᵖ")
	}
	return s
}
