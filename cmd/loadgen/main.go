// Command loadgen is the macro load harness: it replays workload-model
// traffic against a live multi-site Aequus deployment over real HTTP —
// mixed open-loop (arrival-driven) and closed-loop (one-in-flight) clients
// issuing priority lookups, batch resolutions and usage ingest while
// exchange rounds and optional fault windows churn in the background — and
// writes a machine-readable BENCH_load.json report with per-route latency
// quantiles, achieved throughput and error rates, evaluated against SLO
// gates. The exit code is the gate verdict: 0 when every gate passes,
// 1 on violation, 2 on setup or run failure.
//
// By default loadgen deploys its own federation in-process (-sites) and
// tears it down afterwards; -targets drives an externally running
// deployment instead. The whole request schedule derives from -seed: same
// seed, same flags → identical schedule (the report's fingerprint proves
// it), so CI trend comparisons know the offered load was unchanged.
//
// Examples:
//
//	loadgen -seed 1 -sites 2 -users 10000 -duration 30s -rps 300
//	loadgen -seed 1 -users 100000 -rps 2000 -slo slo.json -out BENCH_load.json
//	loadgen -ramp -ramp-start 500 -ramp-step 500 -ramp-steps 8 -ramp-step-duration 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/loadgen"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed     = flag.Int64("seed", 1, "deterministic schedule seed")
		sites    = flag.Int("sites", 2, "sites to deploy in-process (ignored with -targets)")
		users    = flag.Int("users", 10000, "population size (policy leaves and request mix)")
		duration = flag.Duration("duration", 30*time.Second, "load duration (per step in ramp mode)")
		rps      = flag.Float64("rps", 200, "total open-loop request rate")
		open     = flag.Int("open-clients", 0, "open-loop client count (0 = derive from rps)")
		closed   = flag.Int("closed-clients", 0, "closed-loop client count (default 2 per site)")
		batch    = flag.Int("batch-size", 64, "users per /fairshare/batch request")
		ingestN  = flag.Int("ingest-batch", 8, "job completions per usage-ingest request (1 = single-report /usage)")
		mixFlag  = flag.String("mix", "", "route mix weights, e.g. fairshare=0.7,batch=0.15,ingest=0.15")
		targets  = flag.String("targets", "", "comma-separated base URLs of a running deployment (empty = self-deploy)")

		sloFile  = flag.String("slo", "", "SLO gate file (JSON); empty = built-in default gates")
		noSLO    = flag.Bool("no-slo", false, "measure only; skip gate evaluation")
		out      = flag.String("out", "BENCH_load.json", "report output path (empty = stdout summary only)")
		benchOut = flag.String("benchfmt", "", "also write a benchstat-comparable rendering to this path")

		exchangeEvery = flag.Duration("exchange-interval", time.Second, "self-deploy: peer exchange period")
		refreshEvery  = flag.Duration("refresh-interval", time.Second, "self-deploy: fairshare refresh period")
		flap          = flag.Bool("flap", true, "self-deploy: flap peer pulls during the middle half of the run")
		flapRate      = flag.Float64("flap-rate", 0.5, "per-pull failure probability inside the flap window")

		ramp      = flag.Bool("ramp", false, "ramp mode: step rps upward to find the saturation knee (skips SLO gates)")
		rampStart = flag.Float64("ramp-start", 250, "ramp: first step's rps")
		rampStep  = flag.Float64("ramp-step", 250, "ramp: rps increment per step")
		rampSteps = flag.Int("ramp-steps", 8, "ramp: maximum steps")
		rampDur   = flag.Duration("ramp-step-duration", 10*time.Second, "ramp: duration of one step")
	)
	flag.Parse()

	fail := func(format string, args ...interface{}) int {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		return 2
	}

	model := workload.NationalGrid2012(*duration)
	pop, err := model.Population(*users)
	if err != nil {
		return fail("building population: %v", err)
	}

	mix := loadgen.DefaultMix()
	if *mixFlag != "" {
		mix, err = parseMix(*mixFlag)
		if err != nil {
			return fail("%v", err)
		}
	}

	slo := loadgen.DefaultSLO()
	if *sloFile != "" {
		slo, err = loadgen.LoadSLOFile(*sloFile)
		if err != nil {
			return fail("loading SLO: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	targetURLs := splitList(*targets)
	if len(targetURLs) == 0 {
		var faults []testbed.LiveFault
		if *flap {
			// Churn the exchange during the middle half of the run: pulls
			// fail with -flap-rate probability, proving peer trouble never
			// surfaces on the serving path (the default SLO gates 5xx to 0).
			total := *duration
			if *ramp {
				total = time.Duration(*rampSteps) * *rampDur
			}
			faults = append(faults, testbed.LiveFault{
				After: total / 4,
				For:   total / 2,
				Kind:  faultinject.Flap,
				Rate:  *flapRate,
			})
		}
		dep, err := testbed.DeployLive(testbed.LiveConfig{
			Sites:            *sites,
			Policy:           pop.PolicyTree(),
			Seed:             *seed,
			ExchangeInterval: *exchangeEvery,
			RefreshInterval:  *refreshEvery,
			Faults:           faults,
		})
		if err != nil {
			return fail("deploying testbed: %v", err)
		}
		defer dep.Close()
		readyCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
		err = dep.WaitReady(readyCtx)
		cancel()
		if err != nil {
			return fail("%v", err)
		}
		targetURLs = dep.URLs()
		fmt.Fprintf(os.Stderr, "loadgen: deployed %d sites: %s\n", *sites, strings.Join(targetURLs, " "))
	}

	planCfg := loadgen.PlanConfig{
		Seed:          *seed,
		Population:    pop,
		Sites:         len(targetURLs),
		Duration:      *duration,
		RPS:           *rps,
		OpenClients:   *open,
		ClosedClients: *closed,
		BatchSize:     *batch,
		IngestBatch:   *ingestN,
		Mix:           mix,
	}
	if planCfg.ClosedClients == 0 {
		planCfg.ClosedClients = 2 * len(targetURLs)
	}
	runCfg := loadgen.RunConfig{Targets: targetURLs}

	var report *loadgen.Report
	if *ramp {
		report, err = loadgen.RunRamp(ctx, runCfg, planCfg, loadgen.RampConfig{
			StartRPS:     *rampStart,
			StepRPS:      *rampStep,
			Steps:        *rampSteps,
			StepDuration: *rampDur,
		})
	} else {
		var plan *loadgen.Plan
		plan, err = loadgen.BuildPlan(planCfg)
		if err != nil {
			return fail("building plan: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d planned requests, fingerprint %016x\n",
			plan.TotalPlanned(), plan.Fingerprint())
		runCfg.Plan = plan
		report, err = loadgen.Run(ctx, runCfg)
	}
	if err != nil {
		return fail("run: %v", err)
	}

	violated := false
	if !*noSLO && !*ramp {
		violations := slo.Evaluate(report)
		report.AttachSLO(violations)
		violated = len(violations) > 0
	}

	if *out != "" {
		if err := report.WriteJSON(*out); err != nil {
			return fail("writing report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: report written to %s\n", *out)
	}
	if *benchOut != "" {
		if err := report.WriteBenchFormat(*benchOut); err != nil {
			return fail("writing benchfmt: %v", err)
		}
	}
	fmt.Print(report.Summary())
	if report.SLO != nil {
		for _, v := range report.SLO.Violations {
			fmt.Printf("  SLO VIOLATION: %s\n", v.Message)
		}
		if report.SLO.Passed {
			fmt.Println("  SLO: all gates passed")
		}
	}
	if violated {
		return 1
	}
	return 0
}

// parseMix parses "fairshare=0.7,batch=0.15,ingest=0.15".
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad mix component %q", part)
		}
		var w float64
		if _, err := fmt.Sscanf(kv[1], "%g", &w); err != nil {
			return m, fmt.Errorf("bad mix weight %q: %v", kv[1], err)
		}
		switch kv[0] {
		case "fairshare":
			m.Fairshare = w
		case "batch":
			m.Batch = w
		case "ingest":
			m.Ingest = w
		default:
			return m, fmt.Errorf("unknown mix route %q", kv[0])
		}
	}
	return m, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
